"""Activation functions with forward and derivative evaluation.

Activations are stateless; both the value and the derivative are computed
from the pre-activation input so that layers can cache a single array.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np


class Activation:
    """Base class for elementwise activations."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Return the activation applied elementwise to ``x``."""
        raise NotImplementedError

    def derivative(self, x: np.ndarray) -> np.ndarray:
        """Return d(activation)/dx evaluated elementwise at ``x``."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Identity(Activation):
    """The identity activation; used for Q-value output heads."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(x, dtype=float))


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x) > 0.0).astype(float)


class Sigmoid(Activation):
    """Logistic sigmoid, numerically stabilised for large |x|."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return sigmoid(x)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        s = sigmoid(x)
        return s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        t = np.tanh(x)
        return 1.0 - t * t


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid used by both the activation and the LSTM.

    A single ``exp(-|x|)`` feeds both the positive branch ``1/(1+z)`` and the
    negative branch ``z/(1+z)``; ``where`` selects per element.  This is
    element-for-element identical to the classic two-branch form, never
    overflows, and avoids the boolean gather/scatter that dominated the small
    hot-path arrays.
    """
    x = np.asarray(x, dtype=float)
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))


_REGISTRY: Dict[str, Type[Activation]] = {
    "identity": Identity,
    "linear": Identity,
    "relu": ReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
}


def get_activation(name_or_instance) -> Activation:
    """Return an :class:`Activation` instance for a name or pass through an instance."""
    if isinstance(name_or_instance, Activation):
        return name_or_instance
    try:
        return _REGISTRY[str(name_or_instance).lower()]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name_or_instance!r}; available: {sorted(_REGISTRY)}"
        ) from None
