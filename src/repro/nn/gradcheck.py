"""Numerical gradient checking utilities.

Used by the test suite to verify the hand-written backward passes of the
dense and LSTM layers against central finite differences.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_gradient(
    func: Callable[[np.ndarray], float],
    x: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference estimate of the gradient of ``func`` at ``x``.

    ``func`` must treat ``x`` as read-only and return a scalar; the input is
    perturbed one element at a time.
    """
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = float(func(x))
        flat[index] = original - epsilon
        minus = float(func(x))
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * epsilon)
    return grad


def relative_error(analytic: np.ndarray, numeric: np.ndarray, eps: float = 1e-9) -> float:
    """Maximum elementwise relative error between two gradient estimates."""
    analytic = np.asarray(analytic, dtype=float)
    numeric = np.asarray(numeric, dtype=float)
    if analytic.shape != numeric.shape:
        raise ValueError(
            f"shape mismatch: analytic {analytic.shape} vs numeric {numeric.shape}"
        )
    denom = np.maximum(np.abs(analytic) + np.abs(numeric), eps)
    return float(np.max(np.abs(analytic - numeric) / denom))
