"""Weight (de)serialization.

Transfer learning in DR-Cell (paper §4.4) initialises the target task's DRQN
from the weights learned on a correlated source task.  These helpers store a
network's weights either as an in-memory dictionary or as an ``.npz`` file,
without pickling arbitrary objects.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import numpy as np

WeightList = List[Dict[str, np.ndarray]]


def weights_to_dict(weights: WeightList) -> Dict[str, np.ndarray]:
    """Flatten per-layer weight dictionaries into a single flat mapping.

    Keys have the form ``"layer{index}/{name}"`` so the layer structure can
    be reconstructed unambiguously.
    """
    flat: Dict[str, np.ndarray] = {}
    for index, layer_weights in enumerate(weights):
        for name, value in layer_weights.items():
            flat[f"layer{index}/{name}"] = np.asarray(value, dtype=float)
    flat["__n_layers__"] = np.asarray([len(weights)], dtype=np.int64)
    return flat


def weights_from_dict(flat: Dict[str, np.ndarray]) -> WeightList:
    """Invert :func:`weights_to_dict`."""
    if "__n_layers__" not in flat:
        raise ValueError("missing __n_layers__ marker; not a serialized weight dict")
    n_layers = int(np.asarray(flat["__n_layers__"]).ravel()[0])
    weights: WeightList = [dict() for _ in range(n_layers)]
    for key, value in flat.items():
        if key == "__n_layers__":
            continue
        prefix, _, name = key.partition("/")
        if not prefix.startswith("layer") or not name:
            raise ValueError(f"malformed weight key {key!r}")
        index = int(prefix[len("layer"):])
        if index >= n_layers:
            raise ValueError(f"weight key {key!r} refers to layer {index} >= {n_layers}")
        weights[index][name] = np.asarray(value, dtype=float)
    return weights


def save_weights(weights: WeightList, path: Union[str, Path]) -> Path:
    """Save weights to an ``.npz`` file and return the resolved path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **weights_to_dict(weights))
    return path


def load_weights(path: Union[str, Path]) -> WeightList:
    """Load weights previously written by :func:`save_weights`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no weight file at {path}")
    with np.load(path) as data:
        flat = {key: data[key] for key in data.files}
    return weights_from_dict(flat)
