"""Minimal NumPy neural-network substrate.

The paper trains its Deep Recurrent Q-Network with TensorFlow; no deep
learning framework is available in this environment, so this subpackage
provides the pieces DR-Cell needs, implemented from scratch on NumPy:

* fully-connected (:class:`~repro.nn.layers.Dense`) and recurrent
  (:class:`~repro.nn.layers.LSTM`) layers with hand-written backpropagation,
* standard activations and losses,
* SGD / Momentum / RMSProp / Adam optimizers,
* a :class:`~repro.nn.network.Sequential` container plus a
  :class:`~repro.nn.network.RecurrentQNetwork` tailored to the DRQN input
  layout (a window of recent cell-selection vectors),
* weight (de)serialization used by the transfer-learning component, and
* numerical gradient checking used by the test suite.
"""

from repro.nn.activations import Activation, Identity, ReLU, Sigmoid, Tanh, get_activation
from repro.nn.initializers import glorot_uniform, he_uniform, orthogonal, zeros_init
from repro.nn.layers import Dense, Dropout, Layer, LSTM
from repro.nn.losses import HuberLoss, Loss, MeanSquaredError, get_loss
from repro.nn.network import QNetworkBase, RecurrentQNetwork, Sequential, FeedForwardQNetwork
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer, RMSProp, get_optimizer
from repro.nn.serialization import load_weights, save_weights, weights_to_dict, weights_from_dict
from repro.nn.gradcheck import numerical_gradient, relative_error

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "get_activation",
    "glorot_uniform",
    "he_uniform",
    "orthogonal",
    "zeros_init",
    "Dense",
    "Dropout",
    "Layer",
    "LSTM",
    "HuberLoss",
    "Loss",
    "MeanSquaredError",
    "get_loss",
    "QNetworkBase",
    "RecurrentQNetwork",
    "FeedForwardQNetwork",
    "Sequential",
    "SGD",
    "Adam",
    "Momentum",
    "Optimizer",
    "RMSProp",
    "get_optimizer",
    "load_weights",
    "save_weights",
    "weights_to_dict",
    "weights_from_dict",
    "numerical_gradient",
    "relative_error",
]
