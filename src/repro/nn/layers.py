"""Neural-network layers with hand-written backpropagation.

The layers follow a small, uniform protocol:

* ``params`` / ``grads`` — dictionaries of parameter name to array; the
  optimizer updates ``params`` in place using ``grads``.
* ``forward(x, training)`` — computes the output and caches whatever the
  backward pass needs.
* ``backward(grad_output)`` — consumes the upstream gradient, fills
  ``grads`` and returns the gradient with respect to the layer input.

Only the pieces DR-Cell needs are implemented: :class:`Dense`,
:class:`Dropout` and a sequence-consuming :class:`LSTM` (the recurrent layer
the paper uses to capture temporal correlations in the state).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.activations import Activation, get_activation, sigmoid
from repro.nn.initializers import get_initializer
from repro.utils.seeding import RngLike, as_rng
from repro.utils.validation import check_positive_int, check_probability


class Layer:
    """Base class for all layers."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer output for a batch ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the input gradient."""
        raise NotImplementedError

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero.

        Existing gradient buffers are zeroed in place (no reallocation on the
        training hot path); buffers are only (re)allocated when a parameter
        appears or changes shape.
        """
        for name, value in self.params.items():
            grad = self.grads.get(name)
            if grad is not None and grad.shape == value.shape:
                grad.fill(0.0)
            else:
                self.grads[name] = np.zeros_like(value)

    def _grad_buffer(self, name: str, *, zero: bool = False) -> np.ndarray:
        """Return the reusable gradient buffer for parameter ``name``.

        ``backward`` implementations write into these buffers instead of
        allocating fresh arrays every step.  ``zero=True`` clears the buffer
        for accumulation-style backward passes.
        """
        param = self.params[name]
        grad = self.grads.get(name)
        if grad is None or grad.shape != param.shape:
            grad = self.grads[name] = np.zeros_like(param)
            return grad
        if zero:
            grad.fill(0.0)
        return grad

    @property
    def parameter_count(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully connected layer: ``y = activation(x @ W + b)``.

    Parameters
    ----------
    input_dim, output_dim:
        Layer fan-in and fan-out.
    activation:
        Activation name or instance; defaults to identity (linear).
    weight_init:
        Initializer name for the weight matrix (``glorot_uniform`` by
        default, ``he_uniform`` recommended for ReLU).
    seed:
        Seed or generator used to draw the initial weights.
    """

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        activation: str | Activation = "identity",
        *,
        weight_init: str = "glorot_uniform",
        seed: RngLike = None,
    ) -> None:
        super().__init__()
        self.input_dim = check_positive_int(input_dim, "input_dim")
        self.output_dim = check_positive_int(output_dim, "output_dim")
        self.activation = get_activation(activation)
        rng = as_rng(seed)
        init = get_initializer(weight_init)
        self.params = {
            "W": init((self.input_dim, self.output_dim), rng),
            "b": np.zeros(self.output_dim, dtype=float),
        }
        self.zero_grads()
        self._cache_x: Optional[np.ndarray] = None
        self._cache_pre: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"Dense expected input dim {self.input_dim}, got {x.shape[1]}"
            )
        pre = x @ self.params["W"] + self.params["b"]
        if training:
            self._cache_x = x
            self._cache_pre = pre
        return self.activation.forward(pre)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_x is None or self._cache_pre is None:
            raise RuntimeError("backward called before forward (or forward ran with training=False)")
        grad_output = np.asarray(grad_output, dtype=float)
        if grad_output.ndim == 1:
            grad_output = grad_output[None, :]
        grad_pre = grad_output * self.activation.derivative(self._cache_pre)
        np.matmul(self._cache_x.T, grad_pre, out=self._grad_buffer("W"))
        np.sum(grad_pre, axis=0, out=self._grad_buffer("b"))
        return grad_pre @ self.params["W"].T


class Dropout(Layer):
    """Inverted dropout; active only when ``training=True``."""

    def __init__(self, rate: float, *, seed: RngLike = None) -> None:
        super().__init__()
        self.rate = check_probability(rate, "rate")
        if self.rate >= 1.0:
            raise ValueError("dropout rate must be < 1")
        self._rng = as_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(float) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=float)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class LSTM(Layer):
    """Long Short-Term Memory layer consuming a ``(batch, time, features)`` sequence.

    The gate parameters are stored stacked as ``Wx`` (input_dim × 4·hidden),
    ``Wh`` (hidden × 4·hidden) and ``b`` (4·hidden) with gate order
    input / forget / candidate / output.  The forget-gate bias is initialised
    to 1, the standard trick that keeps gradients flowing early in training.

    Parameters
    ----------
    input_dim:
        Number of features per timestep (for DR-Cell this equals the number
        of cells: each timestep is one cycle's cell-selection vector).
    hidden_dim:
        Size of the LSTM hidden state.
    return_sequences:
        When True the layer outputs the full hidden sequence
        ``(batch, time, hidden)``; when False (default) only the last hidden
        state ``(batch, hidden)`` — the form the DRQN head consumes.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        *,
        return_sequences: bool = False,
        weight_init: str = "glorot_uniform",
        recurrent_init: str = "orthogonal",
        forget_bias: float = 1.0,
        seed: RngLike = None,
    ) -> None:
        super().__init__()
        self.input_dim = check_positive_int(input_dim, "input_dim")
        self.hidden_dim = check_positive_int(hidden_dim, "hidden_dim")
        self.return_sequences = bool(return_sequences)
        rng = as_rng(seed)
        w_init = get_initializer(weight_init)
        r_init = get_initializer(recurrent_init)
        hidden4 = 4 * self.hidden_dim
        bias = np.zeros(hidden4, dtype=float)
        bias[self.hidden_dim : 2 * self.hidden_dim] = float(forget_bias)
        self.params = {
            "Wx": w_init((self.input_dim, hidden4), rng),
            "Wh": np.concatenate(
                [r_init((self.hidden_dim, self.hidden_dim), rng) for _ in range(4)], axis=1
            ),
            "b": bias,
        }
        self.zero_grads()
        self._cache: Optional[dict] = None

    # -- forward -----------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 2:
            # Interpret a single sequence as batch size one.
            x = x[None, :, :]
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                "LSTM expects input of shape (batch, time, "
                f"{self.input_dim}), got {x.shape}"
            )
        batch, steps, _ = x.shape
        hidden = self.hidden_dim
        h = np.zeros((batch, hidden), dtype=float)
        c = np.zeros((batch, hidden), dtype=float)

        # All four gates of every timestep live in one (steps, batch, 4H)
        # slab; per-step activations are applied to fused column slices
        # instead of four separate temporaries.
        gates = np.empty((steps, batch, 4 * hidden), dtype=float)
        cells = np.empty((steps, batch, hidden), dtype=float)
        hiddens = np.empty((steps, batch, hidden), dtype=float)
        scratch = np.empty((batch, 4 * hidden), dtype=float)
        scratch_h = np.empty((batch, hidden), dtype=float)

        Wx, Wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]
        for t in range(steps):
            z = gates[t]
            np.matmul(x[:, t, :], Wx, out=z)
            np.matmul(h, Wh, out=scratch)
            z += scratch
            z += b
            z[:, : 2 * hidden] = sigmoid(z[:, : 2 * hidden])
            z[:, 2 * hidden : 3 * hidden] = np.tanh(z[:, 2 * hidden : 3 * hidden])
            z[:, 3 * hidden :] = sigmoid(z[:, 3 * hidden :])
            i = z[:, :hidden]
            f = z[:, hidden : 2 * hidden]
            g = z[:, 2 * hidden : 3 * hidden]
            o = z[:, 3 * hidden :]
            np.multiply(f, c, out=cells[t])
            np.multiply(i, g, out=scratch_h)
            cells[t] += scratch_h
            c = cells[t]
            np.tanh(c, out=scratch_h)
            np.multiply(o, scratch_h, out=hiddens[t])
            h = hiddens[t]

        if training:
            self._cache = {"x": x, "gates": gates, "c": cells, "h": hiddens}
        else:
            self._cache = None

        if self.return_sequences:
            return hiddens.transpose(1, 0, 2).copy()
        return h.copy()

    # -- backward ----------------------------------------------------------

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (or forward ran with training=False)")
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        hidden = self.hidden_dim

        grad_output = np.asarray(grad_output, dtype=float)
        if self.return_sequences:
            if grad_output.shape != (batch, steps, hidden):
                raise ValueError(
                    f"grad_output shape {grad_output.shape} does not match output "
                    f"shape {(batch, steps, hidden)}"
                )
            grad_h_seq = grad_output.transpose(1, 0, 2)
        else:
            if grad_output.ndim == 1:
                grad_output = grad_output[None, :]
            if grad_output.shape != (batch, hidden):
                raise ValueError(
                    f"grad_output shape {grad_output.shape} does not match output "
                    f"shape {(batch, hidden)}"
                )
            grad_h_seq = np.zeros((steps, batch, hidden), dtype=float)
            grad_h_seq[-1] = grad_output

        Wx, Wh = self.params["Wx"], self.params["Wh"]
        grad_Wx = self._grad_buffer("Wx", zero=True)
        grad_Wh = self._grad_buffer("Wh", zero=True)
        grad_b = self._grad_buffer("b", zero=True)
        grad_x = np.zeros_like(x)

        grad_h_next = np.zeros((batch, hidden), dtype=float)
        grad_c_next = np.zeros((batch, hidden), dtype=float)

        gates = cache["gates"]
        cells = cache["c"]
        hiddens = cache["h"]
        zeros_bh = np.zeros((batch, hidden), dtype=float)
        # Pre-activation gradients for all four gates of one timestep are
        # assembled in a single reused (batch, 4H) buffer.
        dz = np.empty((batch, 4 * hidden), dtype=float)

        for t in reversed(range(steps)):
            grad_h = grad_h_seq[t] + grad_h_next
            gate = gates[t]
            i = gate[:, :hidden]
            f = gate[:, hidden : 2 * hidden]
            g = gate[:, 2 * hidden : 3 * hidden]
            o = gate[:, 3 * hidden :]
            c = cells[t]
            c_prev = cells[t - 1] if t > 0 else zeros_bh
            h_prev = hiddens[t - 1] if t > 0 else zeros_bh
            tanh_c = np.tanh(c)

            grad_o = grad_h * tanh_c
            grad_c = grad_h * o * (1.0 - tanh_c * tanh_c) + grad_c_next
            grad_f = grad_c * c_prev
            grad_i = grad_c * g
            grad_g = grad_c * i
            grad_c_next = grad_c * f

            dz[:, :hidden] = grad_i * i * (1.0 - i)
            dz[:, hidden : 2 * hidden] = grad_f * f * (1.0 - f)
            dz[:, 2 * hidden : 3 * hidden] = grad_g * (1.0 - g * g)
            dz[:, 3 * hidden :] = grad_o * o * (1.0 - o)

            grad_Wx += x[:, t, :].T @ dz
            grad_Wh += h_prev.T @ dz
            grad_b += dz.sum(axis=0)
            grad_x[:, t, :] = dz @ Wx.T
            grad_h_next = dz @ Wh.T

        return grad_x

    def initial_state(self, batch: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Return zero (hidden, cell) states for a batch of ``batch`` sequences."""
        shape = (batch, self.hidden_dim)
        return np.zeros(shape, dtype=float), np.zeros(shape, dtype=float)
