"""Loss functions for Q-network training.

Each loss exposes ``value`` (a scalar) and ``gradient`` (dLoss/dPrediction,
same shape as the predictions).  Both accept an optional elementwise weight
mask, which the DQN trainer uses to restrict the temporal-difference loss to
the action actually taken in each sampled transition.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np


class Loss:
    """Base class for losses."""

    name = "loss"

    def value(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> float:
        raise NotImplementedError

    def gradient(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _prepare(
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"predictions shape {predictions.shape} != targets shape {targets.shape}"
            )
        if weights is None:
            weights = np.ones_like(predictions)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != predictions.shape:
                raise ValueError(
                    f"weights shape {weights.shape} != predictions shape {predictions.shape}"
                )
        denom = float(weights.sum())
        if denom <= 0:
            denom = 1.0
        return predictions, targets, weights, denom


class MeanSquaredError(Loss):
    """Weighted mean squared error: mean of ``w * (pred - target)^2``."""

    name = "mse"

    def value(self, predictions, targets, weights=None) -> float:
        predictions, targets, weights, denom = self._prepare(predictions, targets, weights)
        diff = predictions - targets
        return float(np.sum(weights * diff * diff) / denom)

    def gradient(self, predictions, targets, weights=None) -> np.ndarray:
        predictions, targets, weights, denom = self._prepare(predictions, targets, weights)
        return 2.0 * weights * (predictions - targets) / denom


class HuberLoss(Loss):
    """Huber (smooth L1) loss, the standard choice for DQN stability."""

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def value(self, predictions, targets, weights=None) -> float:
        predictions, targets, weights, denom = self._prepare(predictions, targets, weights)
        diff = predictions - targets
        abs_diff = np.abs(diff)
        quadratic = np.minimum(abs_diff, self.delta)
        linear = abs_diff - quadratic
        per_element = 0.5 * quadratic * quadratic + self.delta * linear
        return float(np.sum(weights * per_element) / denom)

    def gradient(self, predictions, targets, weights=None) -> np.ndarray:
        predictions, targets, weights, denom = self._prepare(predictions, targets, weights)
        diff = predictions - targets
        clipped = np.clip(diff, -self.delta, self.delta)
        return weights * clipped / denom


_REGISTRY: Dict[str, Type[Loss]] = {
    "mse": MeanSquaredError,
    "mean_squared_error": MeanSquaredError,
    "huber": HuberLoss,
}


def get_loss(name_or_instance) -> Loss:
    """Return a :class:`Loss` instance from a name or pass an instance through."""
    if isinstance(name_or_instance, Loss):
        return name_or_instance
    try:
        return _REGISTRY[str(name_or_instance).lower()]()
    except KeyError:
        raise ValueError(
            f"unknown loss {name_or_instance!r}; available: {sorted(_REGISTRY)}"
        ) from None
