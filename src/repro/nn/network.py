"""Network containers: a generic :class:`Sequential` and Q-network variants.

Two Q-network architectures are provided, matching the paper's discussion in
§4.3:

* :class:`FeedForwardQNetwork` — dense layers over the flattened state
  window (the "common way" the paper contrasts against), used as the
  ablation baseline.
* :class:`RecurrentQNetwork` — an LSTM over the window of recent cell
  selection vectors followed by dense layers, i.e. the DRQN the paper
  proposes to capture temporal correlations.

Both expose the same training API so that the DQN agent is agnostic to the
architecture.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence as TypingSequence

import numpy as np

from repro.nn.layers import Dense, Layer, LSTM
from repro.nn.losses import Loss, get_loss
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.utils.seeding import RngLike, derive_rng
from repro.utils.validation import check_positive_int


class Sequential:
    """A simple ordered container of layers with joint forward/backward passes."""

    def __init__(self, layers: TypingSequence[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def parameter_groups(self):
        """Yield ``(params, grads)`` pairs for the optimizer."""
        for layer in self.layers:
            if layer.params:
                yield layer.params, layer.grads

    @property
    def parameter_count(self) -> int:
        return int(sum(layer.parameter_count for layer in self.layers))

    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Return a deep copy of every layer's parameters, in layer order."""
        return [
            {name: value.copy() for name, value in layer.params.items()}
            for layer in self.layers
        ]

    def set_weights(self, weights: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters previously produced by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError(
                f"expected weights for {len(self.layers)} layers, got {len(weights)}"
            )
        for layer, layer_weights in zip(self.layers, weights):
            if set(layer_weights) != set(layer.params):
                raise ValueError(
                    f"parameter names {sorted(layer_weights)} do not match layer "
                    f"parameters {sorted(layer.params)}"
                )
            for name, value in layer_weights.items():
                value = np.asarray(value, dtype=float)
                if value.shape != layer.params[name].shape:
                    raise ValueError(
                        f"shape mismatch for parameter {name!r}: "
                        f"{value.shape} vs {layer.params[name].shape}"
                    )
                layer.params[name] = value.copy()

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


class QNetworkBase:
    """Shared machinery for Q-networks: prediction, masked TD training, cloning."""

    def __init__(
        self,
        model: Sequential,
        n_actions: int,
        *,
        optimizer: str | Optimizer = "adam",
        learning_rate: float = 1e-3,
        loss: str | Loss = "huber",
        clip_norm: Optional[float] = 5.0,
    ) -> None:
        self.model = model
        self.n_actions = check_positive_int(n_actions, "n_actions")
        if isinstance(optimizer, Optimizer):
            self.optimizer = optimizer
        else:
            self.optimizer = get_optimizer(
                optimizer, learning_rate=learning_rate, clip_norm=clip_norm
            )
        self.loss = get_loss(loss)
        self._grad_scratch: Optional[np.ndarray] = None

    # -- inference ---------------------------------------------------------

    def predict(self, states: np.ndarray) -> np.ndarray:
        """Return Q-values of shape ``(batch, n_actions)`` without caching gradients."""
        batch = self._prepare_states(states)
        return self.model.forward(batch, training=False)

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Return the Q-value vector for a single state."""
        return self.predict(np.asarray(state)[None, ...])[0]

    # -- training ----------------------------------------------------------

    def train_step(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
    ) -> float:
        """Run one gradient step on the TD targets for the taken actions.

        Parameters
        ----------
        states:
            Batch of states in the network's native layout.
        actions:
            Integer action indices, one per sample.
        targets:
            TD targets ``r + γ·max_a' Q_target(s', a')`` (or just ``r`` for
            terminal transitions), one per sample.

        Returns
        -------
        float
            The masked loss value before the update.
        """
        batch = self._prepare_states(states)
        actions = np.asarray(actions, dtype=int)
        targets = np.asarray(targets, dtype=float)
        if actions.ndim != 1 or targets.ndim != 1 or len(actions) != len(targets):
            raise ValueError("actions and targets must be 1-D arrays of equal length")
        if np.any(actions < 0) or np.any(actions >= self.n_actions):
            raise ValueError("action index out of range")

        self.model.zero_grads()
        predictions = self.model.forward(batch, training=True)
        if predictions.shape[0] != len(actions):
            raise ValueError("batch size mismatch between states and actions")

        target_matrix = predictions.copy()
        mask = np.zeros_like(predictions)
        rows = np.arange(len(actions))
        target_matrix[rows, actions] = targets
        mask[rows, actions] = 1.0

        loss_value = self.loss.value(predictions, target_matrix, weights=mask)
        grad = self.loss.gradient(predictions, target_matrix, weights=mask)
        self.model.backward(grad)
        self.optimizer.step(self.model.parameter_groups())
        return loss_value

    def train_on_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        *,
        target_network: Optional["QNetworkBase"] = None,
        discount: float = 0.95,
    ) -> float:
        """Fused TD pipeline: targets, masked loss and the update in one pass.

        Computes the TD targets ``r + γ·max_a' Q_target(s', a')`` with a
        single target-network forward, then runs the masked gradient step
        directly on the selected ``(row, action)`` entries — no full
        ``(batch, n_actions)`` target-matrix copy and no dense weight mask.
        The resulting parameter update is identical to
        ``train_step(states, actions, targets)``; only the scalar loss is
        reduced over the selected entries instead of the padded matrix.

        The pipeline is batch-size agnostic: callers may hand it anything
        from a lone transition to the fused global-step minibatch (the K
        lockstep transitions of one vectorized step plus random replay
        fill), whose size varies as environments finish.  The dense output
        gradient lives in a scratch buffer reused across calls of the same
        batch size, so steady-state fused training allocates no
        ``(batch, n_actions)`` arrays for the backward seed.

        Parameters
        ----------
        states, actions, rewards, next_states, dones:
            A replay minibatch in array form (see
            :meth:`~repro.rl.replay.ArrayReplayBuffer.sample_arrays`).
        target_network:
            Network evaluated on ``next_states`` (defaults to ``self``).
        discount:
            γ used in the TD target.
        """
        target_network = target_network or self
        actions = np.asarray(actions, dtype=int)
        rewards = np.asarray(rewards, dtype=float)
        dones = np.asarray(dones, dtype=bool)
        if actions.ndim != 1 or rewards.shape != actions.shape or dones.shape != actions.shape:
            raise ValueError("actions, rewards and dones must be 1-D arrays of equal length")
        if np.any(actions < 0) or np.any(actions >= self.n_actions):
            raise ValueError("action index out of range")

        next_q = target_network.predict(next_states)
        max_next = next_q.max(axis=1)
        targets = rewards + discount * max_next * (~dones)

        batch = self._prepare_states(states)
        self.model.zero_grads()
        predictions = self.model.forward(batch, training=True)
        if predictions.shape[0] != len(actions):
            raise ValueError("batch size mismatch between states and actions")

        rows = np.arange(len(actions))
        selected = predictions[rows, actions]
        loss_value = self.loss.value(selected, targets)
        grad = self._grad_scratch
        if grad is None or grad.shape != predictions.shape:
            grad = self._grad_scratch = np.zeros(predictions.shape, dtype=predictions.dtype)
        else:
            grad.fill(0.0)
        grad[rows, actions] = self.loss.gradient(selected, targets)
        self.model.backward(grad)
        self.optimizer.step(self.model.parameter_groups())
        return loss_value

    # -- weights -----------------------------------------------------------

    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        return self.model.get_weights()

    def set_weights(self, weights: List[Dict[str, np.ndarray]]) -> None:
        self.model.set_weights(weights)

    def copy_weights_from(self, other: "QNetworkBase") -> None:
        """Copy another network's weights into this one (used for fixed Q-targets)."""
        self.set_weights(other.get_weights())

    def clone(self, *, with_optimizer: bool = False) -> "QNetworkBase":
        """Return a deep copy of this network.

        By default the clone's optimizer state (Adam moments, iteration
        counter) is reset: target networks never take gradient steps, so
        carrying the online network's dead moments around is pure waste.
        Pass ``with_optimizer=True`` to preserve the optimizer state, e.g.
        when forking a network to continue training it.
        """
        clone = copy.deepcopy(self)
        if not with_optimizer:
            clone.optimizer.reset()
        return clone

    # -- hooks -------------------------------------------------------------

    def _prepare_states(self, states: np.ndarray) -> np.ndarray:
        """Convert a batch of environment states into the network input layout."""
        raise NotImplementedError


class FeedForwardQNetwork(QNetworkBase):
    """Dense Q-network over the flattened state window (DQN ablation baseline).

    Parameters
    ----------
    n_cells:
        Number of cells in the sensing area; the action space size.
    window:
        Number of recent cycles in the state.
    hidden_dims:
        Sizes of the hidden dense layers (ReLU).
    """

    def __init__(
        self,
        n_cells: int,
        window: int,
        hidden_dims: TypingSequence[int] = (64, 64),
        *,
        optimizer: str | Optimizer = "adam",
        learning_rate: float = 1e-3,
        loss: str | Loss = "huber",
        clip_norm: Optional[float] = 5.0,
        seed: RngLike = None,
    ) -> None:
        self.n_cells = check_positive_int(n_cells, "n_cells")
        self.window = check_positive_int(window, "window")
        input_dim = self.n_cells * self.window
        layers: List[Layer] = []
        previous = input_dim
        for index, width in enumerate(hidden_dims):
            layers.append(
                Dense(
                    previous,
                    check_positive_int(width, "hidden width"),
                    activation="relu",
                    weight_init="he_uniform",
                    seed=derive_rng(seed, index),
                )
            )
            previous = width
        layers.append(
            Dense(previous, self.n_cells, activation="identity", seed=derive_rng(seed, 97))
        )
        super().__init__(
            Sequential(layers),
            n_actions=self.n_cells,
            optimizer=optimizer,
            learning_rate=learning_rate,
            loss=loss,
            clip_norm=clip_norm,
        )

    def _prepare_states(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        if states.ndim == 2:
            states = states[None, ...]
        if states.ndim != 3:
            raise ValueError(
                f"expected states of shape (batch, window, n_cells), got {states.shape}"
            )
        batch = states.shape[0]
        if states.shape[1] != self.window or states.shape[2] != self.n_cells:
            raise ValueError(
                f"state window/cells {states.shape[1:]} do not match network "
                f"({self.window}, {self.n_cells})"
            )
        return states.reshape(batch, self.window * self.n_cells)


class RecurrentQNetwork(QNetworkBase):
    """The paper's DRQN: LSTM over the recent-cycle window, dense head to per-cell Q-values.

    The state ``S = [s_{-k+1}, …, s_0]`` is fed as a length-``k`` sequence of
    cell-selection vectors; the LSTM's final hidden state summarises the
    spatio-temporal collection history and a dense head maps it to one
    Q-value per cell (action).
    """

    def __init__(
        self,
        n_cells: int,
        window: int,
        lstm_hidden: int = 64,
        dense_hidden: TypingSequence[int] = (64,),
        *,
        optimizer: str | Optimizer = "adam",
        learning_rate: float = 1e-3,
        loss: str | Loss = "huber",
        clip_norm: Optional[float] = 5.0,
        seed: RngLike = None,
    ) -> None:
        self.n_cells = check_positive_int(n_cells, "n_cells")
        self.window = check_positive_int(window, "window")
        self.lstm_hidden = check_positive_int(lstm_hidden, "lstm_hidden")
        layers: List[Layer] = [
            LSTM(self.n_cells, self.lstm_hidden, seed=derive_rng(seed, 0))
        ]
        previous = self.lstm_hidden
        for index, width in enumerate(dense_hidden):
            layers.append(
                Dense(
                    previous,
                    check_positive_int(width, "dense width"),
                    activation="relu",
                    weight_init="he_uniform",
                    seed=derive_rng(seed, index + 1),
                )
            )
            previous = width
        layers.append(
            Dense(previous, self.n_cells, activation="identity", seed=derive_rng(seed, 97))
        )
        super().__init__(
            Sequential(layers),
            n_actions=self.n_cells,
            optimizer=optimizer,
            learning_rate=learning_rate,
            loss=loss,
            clip_norm=clip_norm,
        )

    def _prepare_states(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        if states.ndim == 2:
            states = states[None, ...]
        if states.ndim != 3:
            raise ValueError(
                f"expected states of shape (batch, window, n_cells), got {states.shape}"
            )
        if states.shape[1] != self.window or states.shape[2] != self.n_cells:
            raise ValueError(
                f"state window/cells {states.shape[1:]} do not match network "
                f"({self.window}, {self.n_cells})"
            )
        return states
