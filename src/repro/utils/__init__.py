"""Shared utilities: seeding, validation helpers, and lightweight logging.

These helpers are intentionally dependency-free (NumPy only) so that every
other subpackage can rely on them without circular imports.
"""

from repro.utils.seeding import SeedSequenceFactory, as_rng, derive_rng
from repro.utils.validation import (
    check_fraction,
    check_matrix,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.logging import get_logger

__all__ = [
    "SeedSequenceFactory",
    "as_rng",
    "derive_rng",
    "check_fraction",
    "check_matrix",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "get_logger",
]
