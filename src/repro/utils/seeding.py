"""Deterministic random-number-generator helpers.

Every stochastic component in the library (dataset generators, exploration
policies, replay-buffer sampling, weight initialization) accepts either an
integer seed, a :class:`numpy.random.Generator`, or ``None``.  The helpers in
this module normalise those inputs so that experiments are reproducible end
to end while components stay decoupled: a parent seed can be split into
independent child streams without the components knowing about each other.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing generator
        which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed)!r}")


def derive_rng(seed: RngLike, stream: int) -> np.random.Generator:
    """Derive an independent child generator from ``seed`` for ``stream``.

    Deriving (rather than reusing) generators keeps unrelated components from
    consuming each other's random streams, which would otherwise make results
    depend on call order.
    """
    if stream < 0:
        raise ValueError(f"stream index must be non-negative, got {stream}")
    if isinstance(seed, np.random.Generator):
        # Spawn a child from the generator's bit stream deterministically.
        child_seed = int(seed.integers(0, 2**63 - 1))
        return np.random.default_rng(np.random.SeedSequence(child_seed).spawn(stream + 1)[stream])
    base = np.random.SeedSequence(seed if seed is not None else None)
    children = base.spawn(stream + 1)
    return np.random.default_rng(children[stream])


class SeedSequenceFactory:
    """Hand out independent generators derived from one parent seed.

    A factory is the preferred way to wire reproducibility through a
    multi-component experiment: create one factory from the experiment seed
    and request a named stream per component.

    Examples
    --------
    >>> factory = SeedSequenceFactory(7)
    >>> rng_a = factory.generator("dataset")
    >>> rng_b = factory.generator("agent")
    >>> float(rng_a.random()) != float(rng_b.random())
    True
    >>> SeedSequenceFactory(7).generator("dataset").random() == \
            SeedSequenceFactory(7).generator("dataset").random()
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._base = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._counter = 0

    @property
    def seed(self) -> Optional[int]:
        """The parent seed this factory was constructed with."""
        return self._seed

    def generator(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same ``name`` always maps to the same child stream for a given
        parent seed, regardless of the order in which names are requested.
        """
        if name not in self._streams:
            # Hash the name into a stable spawn key so the mapping does not
            # depend on request order.
            key = abs(hash(name)) % (2**31)
            child = np.random.SeedSequence(entropy=self._base.entropy, spawn_key=(key,))
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fresh(self) -> np.random.Generator:
        """Return a new anonymous child generator (unique per call)."""
        self._counter += 1
        child = np.random.SeedSequence(
            entropy=self._base.entropy, spawn_key=(2**31 + self._counter,)
        )
        return np.random.default_rng(child)
