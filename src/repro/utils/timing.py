"""Centralised wall-clock access: the library's only wall-clock read.

Everything that measures elapsed wall-clock time — trainer reports, the
decision server's latency telemetry, the benchmark harness — calls
:func:`monotonic` instead of :mod:`time` directly.  Two invariants hang off
this single choke point:

* **Determinism**: the ``clock-discipline`` rule of :mod:`repro.analysis`
  allowlists exactly this module, so a wall-clock read cannot quietly leak
  into a deterministic path (anything the serve layer's ``TickClock``
  drives, record/replay, fingerprinted completions).  New timing needs go
  through here or they fail the analysis gate.
* **Testability**: :func:`fake_clock` swaps the underlying clock for a
  manually advanced one, so latency-derived telemetry (e.g.
  :class:`repro.serve.stats.ServerStats`) can be asserted exactly instead
  of via sleeps and tolerances.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["FakeClock", "fake_clock", "monotonic"]

# The active clock callable.  time.perf_counter is the highest-resolution
# monotonic clock Python offers; fake_clock() swaps it out temporarily.
_clock = time.perf_counter


def monotonic() -> float:
    """Seconds from a monotonic clock (only meaningful as a difference).

    This is the single sanctioned wall-clock read in the library; use it for
    *measuring* elapsed time only, never to influence algorithmic behaviour.
    """
    return _clock()


class FakeClock:
    """A manually advanced clock, handed out by :func:`fake_clock`."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        self.now += float(seconds)


@contextmanager
def fake_clock(start: float = 0.0) -> Iterator[FakeClock]:
    """Replace :func:`monotonic`'s clock with a :class:`FakeClock`.

    >>> from repro.utils import timing
    >>> with timing.fake_clock() as clock:
    ...     begin = timing.monotonic()
    ...     clock.advance(1.5)
    ...     timing.monotonic() - begin
    1.5
    """
    global _clock
    clock = FakeClock(start)
    previous = _clock
    _clock = clock
    try:
        yield clock
    finally:
        _clock = previous
