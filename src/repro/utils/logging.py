"""Library-wide logging configuration.

The library never configures the root logger; it only attaches a
``NullHandler`` to its own namespace so that applications stay in control of
log routing.  ``get_logger`` is the single entry point every module uses.
"""

from __future__ import annotations

import logging

_LIBRARY_ROOT = "repro"

logging.getLogger(_LIBRARY_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root.

    Parameters
    ----------
    name:
        Usually ``__name__`` of the calling module.  Names outside the
        ``repro`` namespace are re-parented under it so that a single
        ``logging.getLogger("repro")`` handler captures everything.
    """
    if not name.startswith(_LIBRARY_ROOT):
        name = f"{_LIBRARY_ROOT}.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Convenience helper for examples and scripts: log to stderr.

    Safe to call repeatedly; only one console handler is attached.
    """
    root = logging.getLogger(_LIBRARY_ROOT)
    root.setLevel(level)
    has_console = any(
        isinstance(handler, logging.StreamHandler)
        and not isinstance(handler, logging.NullHandler)
        for handler in root.handlers
    )
    if not has_console:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
