"""JSON-able state serialization for checkpoint/resume.

Every stateful object in the serving stack exposes ``state_dict()`` /
``load_state_dict()`` built on these helpers, so a whole
:class:`~repro.serve.checkpoint.ServerCheckpoint` can be written as plain
JSON and restored bitwise:

* numpy arrays are encoded as base64 of their raw bytes plus dtype/shape —
  an exact round trip, no text formatting of floats anywhere;
* ``numpy.random.Generator`` objects are encoded as their bit-generator
  state (a plain dict of Python ints), which numpy guarantees restores the
  exact stream position;
* nested dicts / lists / tuples of the above are handled recursively by
  :func:`encode_state` / :func:`decode_state`.

The encoding is self-describing: markers (``__ndarray__`` / ``__rng__`` /
``__tuple__``) distinguish encoded objects from ordinary mappings, so a
state dict survives a JSON round trip without a schema.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

_NDARRAY = "__ndarray__"
_RNG = "__rng__"
_TUPLE = "__tuple__"


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """Encode one array exactly: raw little-endian bytes + dtype + shape."""
    array = np.ascontiguousarray(array)
    return {
        _NDARRAY: base64.b64encode(array.tobytes()).decode("ascii"),
        "dtype": array.dtype.str,
        "shape": list(array.shape),
    }


def decode_array(encoded: Mapping[str, Any]) -> np.ndarray:
    """Rebuild the array :func:`encode_array` encoded, bit for bit."""
    raw = base64.b64decode(encoded[_NDARRAY])
    array = np.frombuffer(raw, dtype=np.dtype(encoded["dtype"]))
    return array.reshape(tuple(encoded["shape"])).copy()


def rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """The generator's bit-generator state (plain ints — JSON-able)."""
    return {_RNG: rng.bit_generator.state}


def set_rng_state(rng: np.random.Generator, state: Mapping[str, Any]) -> None:
    """Restore a generator to the exact stream position :func:`rng_state` saved."""
    payload = state[_RNG] if _RNG in state else state
    rng.bit_generator.state = _plain(payload)


def _plain(value: Any) -> Any:
    """Recursively strip container wrappers so numpy accepts the state dict."""
    if isinstance(value, Mapping):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


def encode_state(value: Any) -> Any:
    """Recursively encode a nested state value into JSON-able primitives."""
    if isinstance(value, np.ndarray):
        return encode_array(value)
    if isinstance(value, np.random.Generator):
        return rng_state(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        # float() on a float64 is exact: Python floats are IEEE doubles.
        return float(value)
    if isinstance(value, tuple):
        return {_TUPLE: [encode_state(item) for item in value]}
    if isinstance(value, Mapping):
        return {str(key): encode_state(item) for key, item in value.items()}
    if isinstance(value, (list,)):
        return [encode_state(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} into a state dict")


def decode_state(value: Any) -> Any:
    """Invert :func:`encode_state`."""
    if isinstance(value, Mapping):
        if _NDARRAY in value:
            return decode_array(value)
        if _RNG in value:
            return dict(value)  # opaque; hand to set_rng_state
        if _TUPLE in value:
            return tuple(decode_state(item) for item in value[_TUPLE])
        return {key: decode_state(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_state(item) for item in value]
    return value


def is_rng_state(value: Any) -> bool:
    """True when ``value`` is an encoded generator state."""
    return isinstance(value, Mapping) and _RNG in value


def encode_weights(weights: Sequence[Mapping[str, np.ndarray]]) -> List[Dict[str, Any]]:
    """Encode network weights (list of per-layer name→array dicts) exactly."""
    return [
        {name: encode_array(np.asarray(array)) for name, array in layer.items()}
        for layer in weights
    ]


def decode_weights(encoded: Sequence[Mapping[str, Any]]) -> List[Dict[str, np.ndarray]]:
    """Invert :func:`encode_weights`."""
    return [
        {name: decode_array(array) for name, array in layer.items()}
        for layer in encoded
    ]
