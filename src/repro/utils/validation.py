"""Argument-validation helpers shared by all subpackages.

Raising early with a precise message is cheaper than chasing a NaN through a
training run, so public constructors validate their inputs with these
helpers.  Each helper returns the validated (possibly coerced) value so it
can be used inline in assignments.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in the half-open interval (0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in (0, 1], got {value!r}")
    return value


def check_matrix(
    matrix: np.ndarray,
    name: str,
    *,
    shape: Optional[Tuple[Optional[int], Optional[int]]] = None,
    allow_nan: bool = True,
) -> np.ndarray:
    """Validate a 2-D float matrix and return it as ``np.ndarray`` of float64.

    Parameters
    ----------
    matrix:
        Array-like to validate.
    name:
        Name used in error messages.
    shape:
        Optional ``(rows, cols)`` constraint; ``None`` entries are wildcards.
    allow_nan:
        When False, NaN entries raise.  Missing observations in the library
        are represented as NaN, so most callers keep the default.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D matrix, got ndim={arr.ndim}")
    if shape is not None:
        rows, cols = shape
        if rows is not None and arr.shape[0] != rows:
            raise ValueError(f"{name} must have {rows} rows, got {arr.shape[0]}")
        if cols is not None and arr.shape[1] != cols:
            raise ValueError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    if not allow_nan and np.isnan(arr).any():
        raise ValueError(f"{name} must not contain NaN values")
    if np.isinf(arr).any():
        raise ValueError(f"{name} must not contain infinite values")
    return arr
