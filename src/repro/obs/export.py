"""Exporters: Prometheus text exposition and JSON snapshots of a metrics registry.

Two renderings of one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{labels} value`` samples,
  histogram ``_bucket``/``_sum``/``_count`` expansion with cumulative
  ``le`` buckets).  :func:`parse_prometheus` is the matching minimal
  parser — the obs tests and the CI smoke step use it, so "the snapshot
  parses" is a checked property, not an assumption.
* :func:`snapshot` — a JSON-able dict carrying the full registry contents
  (type, help, bucket edges, every labelled series);
  :func:`registry_from_snapshot` rebuilds an equivalent registry from it,
  which is what lets ``python -m repro.obs render`` re-render a saved
  snapshot in either format.

Rendering is a pure function of the registry: metrics in sorted-name
order, series in sorted-label order, so two runs with equal telemetry
produce byte-identical output.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "snapshot",
    "registry_from_snapshot",
    "save_snapshot",
]


def _fmt(value: float) -> str:
    """Prometheus-style number rendering (integers without a decimal point)."""
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(label_key: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in label_key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (deterministic ordering)."""
    lines: List[str] = []
    for metric in registry:
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.type_name}")
        if isinstance(metric, (Counter, Gauge)):
            for label_key, cell in metric.samples():
                lines.append(
                    f"{metric.name}{_labels_text(label_key)} {_fmt(cell[0])}"  # type: ignore[index]
                )
        elif isinstance(metric, Histogram):
            for label_key, series in metric.samples():
                running = 0
                for edge, count in zip(metric.buckets, series.counts):  # type: ignore[union-attr]
                    running += count
                    le = _labels_text(label_key, f'le="{_fmt(edge)}"')
                    lines.append(f"{metric.name}_bucket{le} {running}")
                running += series.counts[-1]  # type: ignore[union-attr]
                le = _labels_text(label_key, 'le="+Inf"')
                lines.append(f"{metric.name}_bucket{le} {running}")
                lines.append(
                    f"{metric.name}_sum{_labels_text(label_key)} {_fmt(series.sum)}"  # type: ignore[union-attr]
                )
                lines.append(
                    f"{metric.name}_count{_labels_text(label_key)} {series.count}"  # type: ignore[union-attr]
                )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse text exposition into ``{metric: {"type", "help", "samples"}}``.

    A deliberately strict, minimal parser: every non-comment line must be a
    valid sample, every sample's metric must have been declared by a
    preceding ``# TYPE`` line, and values must parse as floats.  Raises
    ``ValueError`` otherwise.  ``samples`` maps the rendered label text to
    the float value.
    """
    metrics: Dict[str, Dict[str, Any]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            metrics.setdefault(name, {"samples": {}})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_name = rest.partition(" ")
            if type_name not in ("counter", "gauge", "histogram", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {type_name!r}")
            metrics.setdefault(name, {"samples": {}})["type"] = type_name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and metrics.get(trimmed, {}).get("type") == "histogram":
                base = trimmed
                break
        if base not in metrics or "type" not in metrics[base]:
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE header")
        try:
            value = float(match.group("value"))
        except ValueError as error:
            raise ValueError(f"line {lineno}: bad sample value {line!r}") from error
        labels = match.group("labels") or ""
        if labels and not _LABEL_RE.findall(labels):
            raise ValueError(f"line {lineno}: unparseable labels {labels!r}")
        key = name + ("{" + labels + "}" if labels else "")
        metrics[base]["samples"][key] = value
    return metrics


# -- JSON snapshots --------------------------------------------------------------


def snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """A JSON-able snapshot of the registry's full contents."""
    out: Dict[str, Any] = {"version": 1, "metrics": {}}
    for metric in registry:
        entry: Dict[str, Any] = {
            "type": metric.type_name,
            "help": metric.help,
            "series": [],
        }
        if isinstance(metric, Histogram):
            entry["buckets"] = list(metric.buckets)
            for label_key, series in metric.samples():
                entry["series"].append(
                    {
                        "labels": dict(label_key),
                        "counts": list(series.counts),  # type: ignore[union-attr]
                        "sum": series.sum,  # type: ignore[union-attr]
                        "count": series.count,  # type: ignore[union-attr]
                    }
                )
        else:
            for label_key, cell in metric.samples():
                entry["series"].append(
                    {"labels": dict(label_key), "value": cell[0]}  # type: ignore[index]
                )
        out["metrics"][metric.name] = entry
    return out


def registry_from_snapshot(data: Dict[str, Any]) -> MetricsRegistry:
    """Rebuild an equivalent :class:`MetricsRegistry` from :func:`snapshot` output."""
    if int(data.get("version", 0)) != 1:
        raise ValueError(f"unsupported obs snapshot version: {data.get('version')!r}")
    registry = MetricsRegistry()
    for name, entry in data["metrics"].items():
        type_name = entry["type"]
        help_text = entry.get("help", "")
        if type_name == "counter":
            metric = registry.counter(name, help_text)
            for series in entry["series"]:
                metric.set_total(float(series["value"]), **series["labels"])
        elif type_name == "gauge":
            metric = registry.gauge(name, help_text)
            for series in entry["series"]:
                metric.set(float(series["value"]), **series["labels"])
        elif type_name == "histogram":
            histogram = registry.histogram(
                name, help_text, buckets=entry["buckets"]
            )
            for series in entry["series"]:
                rebuilt = histogram._series_for(series["labels"])
                rebuilt.counts = [int(c) for c in series["counts"]]  # type: ignore[union-attr]
                rebuilt.sum = float(series["sum"])  # type: ignore[union-attr]
                rebuilt.count = int(series["count"])  # type: ignore[union-attr]
        else:
            raise ValueError(f"unknown metric type in snapshot: {type_name!r}")
    return registry


def save_snapshot(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write :func:`snapshot` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot(registry), indent=2), encoding="utf-8")
    return path
