"""Guarded phase timers: near-zero overhead off, per-phase accounting on.

The hot paths of the stack — the trainer's lockstep loop, the LOO
assessment pass, the ALS sweep behind every completion — are instrumented
with::

    from repro.obs.profile import phase

    with phase("als.solve"):
        ...

When no profiler is active (the default), :func:`phase` returns one shared
no-op context manager: the cost is a module-global read plus an empty
``with`` block, and nothing reads a clock — the instrumented code runs at
full speed and stays clock-discipline clean.  When a :class:`Profiler` is
:meth:`~Profiler.activate`\\ d, each phase records its call count and total
:func:`~repro.utils.timing.monotonic` seconds, and — when the profiler was
built with a :class:`~repro.obs.trace.Tracer` — emits a trace span that
nests under whichever batch span is open (so a served completion's ALS
solve shows up *inside* its batch in the Chrome trace).

Profiling is observational only: timers never influence control flow, so a
profiled run is bitwise identical to an unprofiled one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.utils.timing import monotonic

__all__ = ["Profiler", "phase"]

#: The active profiler, if any.  A module global (not thread-local) because
#: the whole stack is cooperatively single-threaded; Profiler.activate()
#: enforces non-reentrancy.
_active: Optional["Profiler"] = None


class _NullPhase:
    """The shared do-nothing context manager returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    """One timed phase: accumulates into the profiler on exit."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = monotonic()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._profiler._record(self._name, self._start, monotonic())
        return False


def phase(name: str):
    """A context manager timing ``name`` under the active profiler (no-op otherwise)."""
    profiler = _active
    if profiler is None:
        return _NULL_PHASE
    return _Phase(profiler, name)


class Profiler:
    """Accumulates per-phase counts and seconds; optionally emits trace spans.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; each recorded phase also
        becomes a ``cat="profile"`` span on it (nested under the open batch
        span, if any).
    """

    def __init__(self, *, tracer: Optional[object] = None) -> None:
        self.tracer = tracer
        # name -> [count, total_seconds]; insertion order is first-seen, but
        # reporting sorts by name so snapshots are deterministic.
        self._phases: Dict[str, List[float]] = {}

    def _record(self, name: str, start: float, end: float) -> None:
        cell = self._phases.get(name)
        if cell is None:
            cell = self._phases[name] = [0, 0.0]
        cell[0] += 1
        cell[1] += end - start
        if self.tracer is not None:
            self.tracer.add_span(name, cat="profile", start=start, end=end)

    @contextmanager
    def activate(self) -> Iterator["Profiler"]:
        """Make this the process-wide active profiler for the block."""
        global _active
        if _active is not None:
            raise RuntimeError("another Profiler is already active")
        _active = self
        try:
            yield self
        finally:
            _active = None

    # -- reporting ---------------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"count": n, "seconds": s}}``, sorted by phase name."""
        return {
            name: {"count": int(count), "seconds": round(seconds, 6)}
            for name, (count, seconds) in sorted(self._phases.items())
        }

    def count(self, name: str) -> int:
        """Times ``name`` was entered (0 if never)."""
        return int(self._phases.get(name, (0, 0.0))[0])

    def seconds(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never)."""
        return float(self._phases.get(name, (0, 0.0))[1])

    def ingest(self, registry: object) -> None:
        """Mirror the phase totals into a metrics registry.

        ``repro_profile_phase_total{phase=...}`` /
        ``repro_profile_phase_seconds_total{phase=...}`` counters, one pair
        per phase; ``registry`` is a
        :class:`~repro.obs.metrics.MetricsRegistry`.
        """
        counts = registry.counter(
            "repro_profile_phase_total", "Times each profiled phase ran"
        )
        seconds = registry.counter(
            "repro_profile_phase_seconds_total",
            "Total monotonic seconds spent in each profiled phase",
        )
        for name, (count, total) in sorted(self._phases.items()):
            counts.set_total(int(count), phase=name)
            seconds.set_total(float(total), phase=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Profiler(phases={len(self._phases)}, tracer={self.tracer is not None})"
