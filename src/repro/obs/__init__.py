"""repro.obs — unified metrics, request tracing, and profiling across train/serve/learn.

One package, three observational instruments:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters, gauges,
  and fixed-bucket histograms under the canonical ``repro_*`` namespaces,
  filled by the duck-typed adapters in :mod:`repro.obs.adapters`;
* :mod:`repro.obs.trace` — a :class:`Tracer` following every served request
  from :meth:`MicroBatcher.submit` through batch fusion to its response,
  exported as Chrome trace-event JSON;
* :mod:`repro.obs.profile` — guarded :func:`phase` timers in the trainer,
  LOO, and ALS hot paths that compile to a no-op when no profiler is active.

:class:`Observability` bundles all three for
:meth:`Session.serve(obs=...) <repro.api.session.Session.serve>` /
:meth:`Session.train(obs=...) <repro.api.session.Session.train>`, and
``python -m repro.obs`` is the standalone CLI.

The package's contract is that it is **observational only**: it imports
nothing from the stack it watches (only :mod:`repro.utils.timing` and the
stdlib), stores no payload references, draws no RNGs, and never feeds back
into scheduling — a run with obs attached is bitwise identical to the same
run without it (asserted in ``tests/obs/``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union
from contextlib import contextmanager

from repro.obs.adapters import (
    ingest_learner,
    ingest_server_stats,
    ingest_solver_stats,
    ingest_training_report,
    learner_metrics,
    server_stats_metrics,
    solver_stats_metrics,
    training_report_metrics,
)
from repro.obs.export import (
    parse_prometheus,
    registry_from_snapshot,
    render_prometheus,
    save_snapshot,
    snapshot,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import Profiler, phase
from repro.obs.trace import Tracer, validate_chrome_trace

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "Tracer",
    "Profiler",
    "phase",
    "render_prometheus",
    "parse_prometheus",
    "snapshot",
    "save_snapshot",
    "registry_from_snapshot",
    "validate_chrome_trace",
    "ingest_server_stats",
    "ingest_solver_stats",
    "ingest_learner",
    "ingest_training_report",
    "server_stats_metrics",
    "solver_stats_metrics",
    "learner_metrics",
    "training_report_metrics",
]


class Observability:
    """The bundle a session carries: registry + optional tracer + optional profiler.

    Parameters
    ----------
    trace:
        Whether to collect request/batch spans (a :class:`Tracer`).
    profile:
        Whether :func:`phase` timers record while the session runs (a
        :class:`Profiler`, fed into the tracer when both are enabled).
    snapshot_every:
        If > 0, :meth:`repro.api.session.Session.serve` re-ingests server
        stats into the registry every that-many cycle barriers (the stack's
        quiescent points), so long sessions expose fresh metrics mid-run
        rather than only at the end.
    """

    def __init__(
        self,
        *,
        trace: bool = False,
        profile: bool = False,
        snapshot_every: int = 0,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.profiler: Optional[Profiler] = (
            Profiler(tracer=self.tracer) if profile else None
        )
        self.snapshot_every = int(snapshot_every)
        self.snapshots_taken = 0

    # -- ingestion ---------------------------------------------------------------

    def observe_server(self, stats: Any) -> None:
        """Mirror a :class:`ServerStats` (and its learners) into the registry."""
        ingest_server_stats(self.registry, stats)

    def observe_solver(self, solver_stats: Any, *, backend: str = "numpy") -> None:
        """Mirror a :class:`SolverStats` into the registry."""
        ingest_solver_stats(self.registry, solver_stats, backend=backend)

    def observe_learner(self, telemetry: Any, *, learner: str = "learner-0") -> None:
        """Mirror one learner telemetry snapshot into the registry."""
        ingest_learner(self.registry, telemetry, learner=learner)

    def observe_training(self, report: Any, *, run: str = "train") -> None:
        """Mirror a :class:`TrainingReport` into the registry."""
        ingest_training_report(self.registry, report, run=run)

    def on_cycle_barrier(self, server: Any) -> None:
        """The session's barrier hook: periodic registry refresh from live stats."""
        if self.snapshot_every <= 0:
            return
        self.snapshots_taken += 1
        if self.snapshots_taken % self.snapshot_every == 0:
            self.observe_server(server.stats)

    @contextmanager
    def profiling(self) -> Iterator["Observability"]:
        """Activate the profiler (if any) for the block; no-op otherwise."""
        if self.profiler is None:
            yield self
            return
        with self.profiler.activate():
            yield self

    def finalize(self) -> None:
        """Fold profiler phase totals into the registry (call once, at the end)."""
        if self.profiler is not None:
            self.profiler.ingest(self.registry)

    # -- export ------------------------------------------------------------------

    def prometheus(self) -> str:
        """The registry as Prometheus text exposition."""
        return render_prometheus(self.registry)

    def snapshot(self) -> Dict[str, Any]:
        """The registry as a JSON-able snapshot dict."""
        return snapshot(self.registry)

    def save_prometheus(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.prometheus(), encoding="utf-8")
        return path

    def save_snapshot(self, path: Union[str, Path]) -> Path:
        return save_snapshot(self.registry, path)

    def save_trace(self, path: Union[str, Path]) -> Path:
        if self.tracer is None:
            raise ValueError("this Observability was built with trace=False")
        return self.tracer.save(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Observability(metrics={len(self.registry)}, "
            f"trace={self.tracer is not None}, profile={self.profiler is not None})"
        )
