"""Adapters: the stack's existing telemetry, mirrored into one ``repro_*`` namespace.

Each ``ingest_*`` function reads one subsystem's native telemetry object —
duck-typed, so this module imports nothing from ``repro.serve`` /
``repro.learner`` / ``repro.inference`` — and mirrors it into a
:class:`~repro.obs.metrics.MetricsRegistry` under the canonical metric
families:

========================  =====================================================
family                    source
========================  =====================================================
``repro_serve_*``         :class:`~repro.serve.stats.ServerStats` (endpoint,
                          tenant, cache, tick counters + latency samples)
``repro_als_*``           :class:`~repro.inference.backends.base.SolverStats`
``repro_learner_*``       :meth:`~repro.learner.core.Learner.telemetry`
                          (weight staleness + replay-buffer occupancy)
``repro_train_*``         :class:`~repro.core.trainer.TrainingReport`
========================  =====================================================

Ingestion is **idempotent**: counters mirror the subsystem's own running
totals via ``set_total`` and gauges are overwritten, so calling an adapter
again (the periodic cycle-barrier snapshots) updates rather than
double-counts.  The latency histogram is rebuilt from the endpoint's
bounded sample ring on each call — it reflects the retained window, exactly
like the p50/p99 columns of ``ServerStats.rows()``.

The ``*_metrics`` companions return the same data as a flat
``{sample_name: value}`` dict — ``repro_serve_requests_total{endpoint="select"}``
style keys, identical to the Prometheus sample names the exporter emits.
These back the ``metrics()`` methods on ``ServerStats`` / ``SolverStats`` /
``Learner``, which is where the repo's telemetry dialects converge (the
legacy ``as_dict()`` / ``telemetry()`` shapes remain as backwards-compatible
aliases).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ingest_server_stats",
    "ingest_solver_stats",
    "ingest_learner",
    "ingest_training_report",
    "server_stats_metrics",
    "solver_stats_metrics",
    "learner_metrics",
    "training_report_metrics",
]


def _sample_name(name: str, **labels: object) -> str:
    """A flat Prometheus-style sample key: ``name{label="value",...}``."""
    if not labels:
        return name
    rendered = ",".join(
        f'{key}="{value}"' for key, value in sorted((k, str(v)) for k, v in labels.items())
    )
    return f"{name}{{{rendered}}}"


# -- serve -----------------------------------------------------------------------


def ingest_server_stats(registry: MetricsRegistry, stats: Any) -> None:
    """Mirror a :class:`~repro.serve.stats.ServerStats` into ``repro_serve_*``."""
    requests = registry.counter(
        "repro_serve_requests_total", "Requests submitted per endpoint"
    )
    batches = registry.counter(
        "repro_serve_batches_total", "Batches flushed per endpoint"
    )
    batched = registry.counter(
        "repro_serve_batched_requests_total", "Requests resolved in flushed batches"
    )
    handler_seconds = registry.counter(
        "repro_serve_handler_seconds_total", "Batch handler wall-clock seconds"
    )
    occupancy = registry.gauge(
        "repro_serve_batch_occupancy", "Mean requests fused per flushed batch"
    )
    latency = registry.histogram(
        "repro_serve_latency_seconds",
        "Per-request service latency (bounded sample window)",
    )
    latency.reset()
    for kind in sorted(stats.endpoints):
        endpoint = stats.endpoints[kind]
        requests.set_total(endpoint.requests, endpoint=kind)
        batches.set_total(endpoint.batches, endpoint=kind)
        batched.set_total(endpoint.batched_requests, endpoint=kind)
        handler_seconds.set_total(endpoint.seconds, endpoint=kind)
        if endpoint.batches:
            occupancy.set(endpoint.mean_batch_occupancy, endpoint=kind)
        for sample in endpoint.latencies:
            latency.observe(float(sample), endpoint=kind)

    registry.gauge("repro_serve_ticks", "Logical clock ticks elapsed").set(stats.ticks)
    registry.counter("repro_serve_cache_hits_total", "Completion cache hits").set_total(
        stats.cache_hits
    )
    registry.counter(
        "repro_serve_cache_misses_total", "Completion cache misses"
    ).set_total(stats.cache_misses)
    hit_rate = stats.cache_hit_rate
    if not math.isnan(hit_rate):
        registry.gauge(
            "repro_serve_cache_hit_rate", "Completion cache hit rate"
        ).set(hit_rate)

    tenant_requests = registry.counter(
        "repro_serve_tenant_requests_total", "Requests submitted per tenant"
    )
    tenant_served = registry.counter(
        "repro_serve_tenant_served_total", "Batch slots granted per tenant"
    )
    tenant_starved = registry.counter(
        "repro_serve_tenant_starved_flushes_total",
        "Flushes that left a tenant's pending requests out of the batch",
    )
    for label in sorted(stats.tenants):
        tenant = stats.tenants[label]
        tenant_requests.set_total(tenant.requests, tenant=label)
        tenant_served.set_total(tenant.served, tenant=label)
        tenant_starved.set_total(tenant.starved_flushes, tenant=label)

    for label in sorted(stats.learners):
        ingest_learner(registry, stats.learners[label], learner=label)


def server_stats_metrics(stats: Any) -> Dict[str, object]:
    """The flat ``repro_serve_*`` sample view of a :class:`ServerStats`."""
    out: Dict[str, object] = {}
    for kind in sorted(stats.endpoints):
        endpoint = stats.endpoints[kind]
        out[_sample_name("repro_serve_requests_total", endpoint=kind)] = endpoint.requests
        out[_sample_name("repro_serve_batches_total", endpoint=kind)] = endpoint.batches
        out[_sample_name("repro_serve_batched_requests_total", endpoint=kind)] = (
            endpoint.batched_requests
        )
        out[_sample_name("repro_serve_handler_seconds_total", endpoint=kind)] = (
            endpoint.seconds
        )
        if endpoint.batches:
            out[_sample_name("repro_serve_batch_occupancy", endpoint=kind)] = (
                endpoint.mean_batch_occupancy
            )
    out["repro_serve_ticks"] = stats.ticks
    out["repro_serve_cache_hits_total"] = stats.cache_hits
    out["repro_serve_cache_misses_total"] = stats.cache_misses
    hit_rate = stats.cache_hit_rate
    if not math.isnan(hit_rate):
        out["repro_serve_cache_hit_rate"] = hit_rate
    for label in sorted(stats.tenants):
        tenant = stats.tenants[label]
        out[_sample_name("repro_serve_tenant_requests_total", tenant=label)] = (
            tenant.requests
        )
        out[_sample_name("repro_serve_tenant_served_total", tenant=label)] = tenant.served
        out[_sample_name("repro_serve_tenant_starved_flushes_total", tenant=label)] = (
            tenant.starved_flushes
        )
    for label in sorted(stats.learners):
        out.update(learner_metrics(stats.learners[label], learner=label))
    return out


# -- ALS -------------------------------------------------------------------------

_ALS_COUNTERS = {
    "solves": ("repro_als_solves_total", "Backend solve calls"),
    "matrices": ("repro_als_matrices_total", "Matrices completed"),
    "sweeps_run": ("repro_als_sweeps_run_total", "ALS sweeps executed"),
    "sweeps_saved": (
        "repro_als_sweeps_saved_total",
        "Budgeted sweeps skipped by convergence early-exit",
    ),
    "sharded_solves": ("repro_als_sharded_solves_total", "Row-block sharded solves"),
}


def ingest_solver_stats(
    registry: MetricsRegistry, solver_stats: Any, *, backend: str = "numpy"
) -> None:
    """Mirror a :class:`~repro.inference.backends.base.SolverStats` into ``repro_als_*``."""
    for attr, (name, help_text) in _ALS_COUNTERS.items():
        registry.counter(name, help_text).set_total(
            getattr(solver_stats, attr), backend=backend
        )


def solver_stats_metrics(solver_stats: Any, *, backend: Optional[str] = None) -> Dict[str, object]:
    """The flat ``repro_als_*`` sample view of a :class:`SolverStats`."""
    labels = {} if backend is None else {"backend": backend}
    return {
        _sample_name(name, **labels): getattr(solver_stats, attr)
        for attr, (name, _) in _ALS_COUNTERS.items()
    }


# -- learner ---------------------------------------------------------------------

_LEARNER_GAUGES = {
    "total_steps": ("repro_learner_total_steps", "Agent environment steps observed"),
    "learn_steps": ("repro_learner_learn_steps", "Fused minibatch updates applied"),
}

_WEIGHT_GAUGES = {
    "version": ("repro_learner_weights_version", "Published weight version"),
    "publishes": ("repro_learner_weights_publishes_total", "Weight publications"),
    "pulls": ("repro_learner_weights_pulls_total", "Weight pulls by actors"),
    "stale_pulls": (
        "repro_learner_weights_stale_pulls_total",
        "Pulls that observed an outdated version",
    ),
    "mean_versions_behind": (
        "repro_learner_weights_mean_versions_behind",
        "Mean staleness of pulled weights (versions)",
    ),
    "max_versions_behind": (
        "repro_learner_weights_max_versions_behind",
        "Worst staleness of pulled weights (versions)",
    ),
}

_REPLAY_GAUGES = {
    "capacity": ("repro_learner_replay_capacity", "Shared replay buffer capacity"),
    "size": ("repro_learner_replay_size", "Transitions currently buffered"),
    "batches": ("repro_learner_replay_batches_total", "Transition batches ingested"),
    "transitions": (
        "repro_learner_replay_transitions_total",
        "Transitions ingested across campaigns",
    ),
}


def ingest_learner(
    registry: MetricsRegistry,
    telemetry: Mapping[str, Any],
    *,
    learner: str = "learner-0",
) -> None:
    """Mirror one :meth:`Learner.telemetry` snapshot into ``repro_learner_*``.

    Accepts the full telemetry dict (``weights`` / ``replay`` sub-dicts are
    optional, so :attr:`ServerStats.learners` entries ingest unchanged).
    """
    for key, (name, help_text) in _LEARNER_GAUGES.items():
        if key in telemetry:
            registry.gauge(name, help_text).set(float(telemetry[key]), learner=learner)
    weights = telemetry.get("weights") or {}
    for key, (name, help_text) in _WEIGHT_GAUGES.items():
        if key in weights:
            registry.gauge(name, help_text).set(float(weights[key]), learner=learner)
    replay = telemetry.get("replay") or {}
    for key, (name, help_text) in _REPLAY_GAUGES.items():
        if key in replay:
            registry.gauge(name, help_text).set(float(replay[key]), learner=learner)
    if replay.get("capacity"):
        registry.gauge(
            "repro_learner_replay_occupancy",
            "Replay buffer fill fraction (size / capacity)",
        ).set(float(replay["size"]) / float(replay["capacity"]), learner=learner)
    campaigns = replay.get("campaigns") or {}
    if campaigns:
        per_campaign = registry.gauge(
            "repro_learner_replay_campaign_transitions",
            "Transitions ingested per campaign",
        )
        for campaign in sorted(campaigns):
            per_campaign.set(
                float(campaigns[campaign]["transitions"]),
                learner=learner,
                campaign=campaign,
            )


def learner_metrics(
    telemetry: Mapping[str, Any], *, learner: Optional[str] = None
) -> Dict[str, object]:
    """The flat ``repro_learner_*`` sample view of a telemetry snapshot."""
    labels = {} if learner is None else {"learner": learner}
    out: Dict[str, object] = {}
    for key, (name, _) in _LEARNER_GAUGES.items():
        if key in telemetry:
            out[_sample_name(name, **labels)] = telemetry[key]
    weights = telemetry.get("weights") or {}
    for key, (name, _) in _WEIGHT_GAUGES.items():
        if key in weights:
            out[_sample_name(name, **labels)] = weights[key]
    replay = telemetry.get("replay") or {}
    for key, (name, _) in _REPLAY_GAUGES.items():
        if key in replay:
            out[_sample_name(name, **labels)] = replay[key]
    if replay.get("capacity"):
        out[_sample_name("repro_learner_replay_occupancy", **labels)] = float(
            replay["size"]
        ) / float(replay["capacity"])
    for campaign in sorted(replay.get("campaigns") or {}):
        out[
            _sample_name(
                "repro_learner_replay_campaign_transitions",
                campaign=campaign,
                **labels,
            )
        ] = replay["campaigns"][campaign]["transitions"]
    return out


# -- trainer ---------------------------------------------------------------------


def ingest_training_report(
    registry: MetricsRegistry, report: Any, *, run: str = "train"
) -> None:
    """Mirror a :class:`~repro.core.trainer.TrainingReport` into ``repro_train_*``."""
    registry.counter(
        "repro_train_episodes_total", "Training episodes completed"
    ).set_total(report.episodes, run=run)
    registry.counter(
        "repro_train_steps_total", "Environment steps taken during training"
    ).set_total(report.total_steps, run=run)
    registry.gauge(
        "repro_train_wall_clock_seconds", "Training wall-clock seconds"
    ).set(report.wall_clock_seconds, run=run)
    if report.wall_clock_seconds > 0:
        registry.gauge(
            "repro_train_steps_per_second", "Training throughput (steps/s)"
        ).set(report.total_steps / report.wall_clock_seconds, run=run)
    rewards = getattr(report, "episode_rewards", None)
    if rewards is not None and len(rewards):
        registry.gauge(
            "repro_train_mean_episode_reward", "Mean episode reward"
        ).set(float(sum(rewards) / len(rewards)), run=run)


def training_report_metrics(report: Any, *, run: Optional[str] = None) -> Dict[str, object]:
    """The flat ``repro_train_*`` sample view of a :class:`TrainingReport`."""
    labels = {} if run is None else {"run": run}
    out: Dict[str, object] = {
        _sample_name("repro_train_episodes_total", **labels): report.episodes,
        _sample_name("repro_train_steps_total", **labels): report.total_steps,
        _sample_name("repro_train_wall_clock_seconds", **labels): report.wall_clock_seconds,
    }
    if report.wall_clock_seconds > 0:
        out[_sample_name("repro_train_steps_per_second", **labels)] = (
            report.total_steps / report.wall_clock_seconds
        )
    return out
