"""Request tracing: span contexts from submission to response, Chrome-exportable.

A :class:`Tracer` attached to a :class:`~repro.serve.server.DecisionServer`
(via ``attach_tracer``) follows every request through the serving pipeline:

* a **request span** is minted the moment
  :meth:`~repro.serve.batcher.MicroBatcher.submit` enqueues the request —
  it opens on the tenant's timeline at the submission instant and closes
  when the batch that answered it finishes, so its duration is queue wait
  plus fused service time;
* a **batch span** wraps each :meth:`DecisionServer._flush_one_batch`
  handler invocation — endpoint fusion, :class:`~repro.serve.cache.
  CompletionCache` lookups, and the backend solve all happen inside it.
  The server annotates it with the flush trigger, the logical tick, and the
  cache hit/miss delta the handler produced;
* every request span records its batch span as ``args.parent`` — batch
  spans *parent* request spans, which is the end-to-end link nothing in the
  stack had before;
* **profile spans** (see :mod:`repro.obs.profile`) — ALS sweeps, LOO
  passes, trainer phases — nest under whichever batch span is open when
  they run, completing the flush → fusion → cache → solve chain.

All timestamps come from :func:`repro.utils.timing.monotonic` (exported as
microseconds), so traces taken under :func:`repro.utils.timing.fake_clock`
are exact.  Tracing is strictly observational: it stores no payloads, draws
no RNGs, and never feeds back into scheduling — the journal, checkpoints,
and fingerprints of a traced run are bitwise identical to an untraced one.

:meth:`Tracer.to_chrome` renders the standard Chrome trace-event JSON
object (``{"traceEvents": [...]}``, ``ph: "X"`` complete events plus
thread-name metadata), loadable in ``chrome://tracing`` and Perfetto;
:meth:`Tracer.save` writes it to a file (the CLI's ``--trace out.json``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.utils.timing import monotonic

__all__ = ["Tracer", "SpanRecord", "validate_chrome_trace"]

#: The single pid every event carries (the stack is single-process).
TRACE_PID = 1


class SpanRecord:
    """One completed span: a ``ph: "X"`` Chrome trace event in the making."""

    __slots__ = ("name", "cat", "start", "end", "track", "span_id", "parent_id", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        track: str,
        span_id: int,
        parent_id: Optional[int],
        args: Dict[str, Any],
    ) -> None:
        self.name = name
        self.cat = cat
        self.start = start
        self.end = end
        self.track = track
        self.span_id = span_id
        self.parent_id = parent_id
        self.args = args


class _OpenRequest:
    """A request span minted at submit, waiting for its batch to close it."""

    __slots__ = ("span_id", "kind", "tenant", "sequence", "enqueued_tick", "start")

    def __init__(
        self, span_id: int, kind: str, tenant: str, sequence: int,
        enqueued_tick: int, start: float,
    ) -> None:
        self.span_id = span_id
        self.kind = kind
        self.tenant = tenant
        self.sequence = sequence
        self.enqueued_tick = enqueued_tick
        self.start = start


class _BatchHandle:
    """The server's handle on an open batch span (returned by begin_batch)."""

    __slots__ = ("span_id", "kind", "tick", "trigger", "start", "requests")

    def __init__(self, span_id, kind, tick, trigger, start, requests) -> None:
        self.span_id = span_id
        self.kind = kind
        self.tick = tick
        self.trigger = trigger
        self.start = start
        self.requests = requests


class Tracer:
    """Collects request/batch/profile spans; exports Chrome trace-event JSON.

    Duck-typed against the serve layer: :class:`~repro.serve.batcher.
    MicroBatcher` calls :meth:`begin_request`, :class:`~repro.serve.server.
    DecisionServer` brackets handlers with :meth:`begin_batch` /
    :meth:`end_batch`, and :class:`~repro.obs.profile.Profiler` feeds
    :meth:`add_span` — this module imports nothing from ``repro.serve``.
    """

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self._open_requests: Dict[int, _OpenRequest] = {}  # sequence -> span
        self._open_batches: List[_BatchHandle] = []
        self._next_span_id = 1
        self._dropped_open = 0

    # -- span accounting ---------------------------------------------------------

    def _mint(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def begin_request(self, request: Any) -> None:
        """Mint a request span (called from ``MicroBatcher.submit``).

        ``request`` is duck-typed: anything with ``kind`` / ``tenant`` /
        ``sequence`` / ``enqueued_at`` attributes.  Only those scalars are
        kept — payloads are never referenced, so tracing cannot pin request
        data in memory.
        """
        self._open_requests[int(request.sequence)] = _OpenRequest(
            span_id=self._mint(),
            kind=str(request.kind),
            tenant=str(request.tenant),
            sequence=int(request.sequence),
            enqueued_tick=int(request.enqueued_at),
            start=monotonic(),
        )

    def begin_batch(
        self, kind: str, *, tick: int, trigger: str, requests: Any
    ) -> _BatchHandle:
        """Open a batch span around one flush; returns the handle for ``end_batch``."""
        handle = _BatchHandle(
            span_id=self._mint(),
            kind=str(kind),
            tick=int(tick),
            trigger=str(trigger),
            start=monotonic(),
            requests=[(int(r.sequence), int(r.enqueued_at)) for r in requests],
        )
        self._open_batches.append(handle)
        return handle

    def end_batch(self, handle: _BatchHandle, **extra: Any) -> None:
        """Close a batch span; closes its request spans and parents them to it."""
        end = monotonic()
        self._open_batches.remove(handle)
        sequences = [sequence for sequence, _ in handle.requests]
        self.spans.append(
            SpanRecord(
                name=f"{handle.kind} batch",
                cat="serve.batch",
                start=handle.start,
                end=end,
                track=f"batch/{handle.kind}",
                span_id=handle.span_id,
                parent_id=None,
                args={
                    "tick": handle.tick,
                    "trigger": handle.trigger,
                    "size": len(sequences),
                    "sequences": sequences,
                    **extra,
                },
            )
        )
        for sequence, enqueued_tick in handle.requests:
            open_request = self._open_requests.pop(sequence, None)
            if open_request is None:
                continue  # submitted before the tracer was attached
            self.spans.append(
                SpanRecord(
                    name=f"{open_request.kind} request",
                    cat="serve.request",
                    start=open_request.start,
                    end=end,
                    track=f"tenant/{open_request.tenant}",
                    span_id=open_request.span_id,
                    parent_id=handle.span_id,
                    args={
                        "sequence": sequence,
                        "tenant": open_request.tenant,
                        "enqueued_tick": enqueued_tick,
                        "flushed_tick": handle.tick,
                        "wait_ticks": handle.tick - enqueued_tick,
                    },
                )
            )

    def add_span(
        self, name: str, *, cat: str, start: float, end: float, **args: Any
    ) -> None:
        """Record an externally timed span (profile phases use this).

        The span nests under the innermost open batch span, if any — that
        is how an ALS solve executed by a ``complete`` handler shows up as
        a child of that batch.
        """
        parent = self._open_batches[-1].span_id if self._open_batches else None
        self.spans.append(
            SpanRecord(
                name=name,
                cat=cat,
                start=start,
                end=end,
                track=f"{cat}",
                span_id=self._mint(),
                parent_id=parent,
                args=dict(args),
            )
        )

    # -- export ------------------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (``chrome://tracing`` / Perfetto).

        Spans become ``ph: "X"`` complete events with microsecond ``ts`` /
        ``dur``; each distinct track gets an integer ``tid`` (first-use
        order) plus a ``thread_name`` metadata event, so tenants, endpoint
        batch lanes, and profile phases render as separate named rows.
        Parenting is explicit in ``args.id`` / ``args.parent``.
        """
        tids: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        for span in self.spans:
            tid = tids.setdefault(span.track, len(tids) + 1)
            args = {"id": span.span_id, **span.args}
            if span.parent_id is not None:
                args["parent"] = span.parent_id
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(max(0.0, span.end - span.start) * 1e6, 3),
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": args,
                }
            )
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
            for track, tid in tids.items()
        ]
        return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}

    def save(self, path: Union[str, Path]) -> Path:
        """Write :meth:`to_chrome` output as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome()), encoding="utf-8")
        return path

    # -- introspection -----------------------------------------------------------

    @property
    def open_requests(self) -> int:
        """Request spans minted but not yet closed by a batch."""
        return len(self._open_requests)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(spans={len(self.spans)}, open={len(self._open_requests)})"


def validate_chrome_trace(trace: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Check ``trace`` is a structurally valid Chrome trace-event object.

    Returns the ``ph: "X"`` events; raises ``ValueError`` on the first
    structural problem (missing keys, wrong types, negative durations).
    Used by the obs tests and the CI smoke step — "the trace file loads"
    means it passes this, not just ``json.loads``.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("a Chrome trace is an object with a traceEvents array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be an array")
    complete: List[Dict[str, Any]] = []
    for event in events:
        if not isinstance(event, dict):
            raise ValueError(f"trace event is not an object: {event!r}")
        phase = event.get("ph")
        if phase not in ("X", "M", "B", "E", "i", "b", "e", "s", "f", "t"):
            raise ValueError(f"unknown trace event phase: {phase!r}")
        if phase == "M":
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"trace event missing {key!r}: {event!r}")
        if phase == "X":
            if "dur" not in event:
                raise ValueError(f"complete event missing dur: {event!r}")
            if float(event["dur"]) < 0:
                raise ValueError(f"negative span duration: {event!r}")
            complete.append(event)
    return complete
