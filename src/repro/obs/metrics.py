"""The obs metrics core: counters, gauges, histograms in one string-keyed registry.

The serving stack's telemetry grew organically — :class:`~repro.serve.stats.
ServerStats` counters, :class:`~repro.inference.backends.base.SolverStats`,
:meth:`~repro.learner.core.Learner.telemetry` — each speaking its own
dialect.  This module is the convergence point: a
:class:`MetricsRegistry` holds every metric under one ``repro_*`` namespace
(``repro_serve_*``, ``repro_als_*``, ``repro_learner_*``, ``repro_train_*``),
string-keyed exactly like :class:`repro.api.registry.Registry` keys
components, and the exporters in :mod:`repro.obs.export` render it as
Prometheus text exposition or a JSON snapshot.

Three metric types cover everything the stack reports:

* :class:`Counter` — a monotonically increasing total (requests served,
  cache hits).  ``set_total`` exists because most of the stack already keeps
  its own counters; adapters *mirror* those into the registry rather than
  double-count.
* :class:`Gauge` — a value that goes up and down (replay occupancy, weight
  version, steps/s).
* :class:`Histogram` — observations bucketed into **fixed** upper-bound
  edges chosen at construction (Prometheus-style cumulative buckets plus
  ``sum``/``count``).  Fixed edges keep two runs' histograms structurally
  identical regardless of what latencies they saw.

Every metric supports Prometheus-style labels, passed as keyword arguments
to ``labels(...)``; a label set is stored as a sorted tuple so iteration
order — and therefore every exported snapshot — is deterministic.

All timing that feeds these metrics routes through
:func:`repro.utils.timing.monotonic` (see :meth:`Histogram.time`), so tests
under :func:`repro.utils.timing.fake_clock` can assert histogram contents
exactly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.utils.timing import monotonic

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram edges for second-scale latencies: sub-millisecond batch
#: handlers up through multi-second full-campaign phases.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    """Canonicalise a label mapping: sorted, stringified, hashable."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ValueError(
            f"metric name must be a non-empty [a-zA-Z0-9_] string, got {name!r}"
        )
    return name


class Metric:
    """Base class: a named metric holding one series per label set."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = str(help)
        # Label-set key -> series value; insertion order is never relied on
        # (samples() sorts), so snapshots are deterministic.
        self._series: Dict[_LabelKey, object] = {}

    def _series_for(self, labels: Mapping[str, object]) -> object:
        key = _label_key(labels)
        if key not in self._series:
            self._series[key] = self._new_series()
        return self._series[key]

    def _new_series(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def samples(self) -> Iterator[Tuple[_LabelKey, object]]:
        """``(label_key, value)`` pairs in sorted label order (deterministic)."""
        for key in sorted(self._series):
            yield key, self._series[key]

    def reset(self) -> None:
        """Drop every series — used by adapters that mirror a rolling window."""
        self._series.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, series={len(self._series)})"


class Counter(Metric):
    """A monotonically non-decreasing total."""

    type_name = "counter"

    def _new_series(self) -> List[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        cell = self._series_for(labels)
        cell[0] += float(amount)  # type: ignore[index]

    def set_total(self, total: float, **labels: object) -> None:
        """Mirror an externally kept running total (must not regress)."""
        cell = self._series_for(labels)
        if total < cell[0]:  # type: ignore[index]
            raise ValueError(
                f"counter {self.name} cannot regress from {cell[0]} to {total}"  # type: ignore[index]
            )
        cell[0] = float(total)  # type: ignore[index]

    def value(self, **labels: object) -> float:
        """The labelled series' current total (0 if never touched)."""
        return float(self._series.get(_label_key(labels), [0.0])[0])  # type: ignore[index]


class Gauge(Metric):
    """A value that can go up and down."""

    type_name = "gauge"

    def _new_series(self) -> List[float]:
        return [0.0]

    def set(self, value: float, **labels: object) -> None:
        cell = self._series_for(labels)
        cell[0] = float(value)  # type: ignore[index]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        cell = self._series_for(labels)
        cell[0] += float(amount)  # type: ignore[index]

    def value(self, **labels: object) -> float:
        return float(self._series.get(_label_key(labels), [0.0])[0])  # type: ignore[index]


class _HistogramSeries:
    """Cumulative bucket counts + sum/count for one label set."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_edges: int) -> None:
        self.counts = [0] * n_edges  # per-edge (non-cumulative) counts
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Observations bucketed into fixed upper-bound edges.

    Parameters
    ----------
    name, help:
        As for every metric.
    buckets:
        Strictly increasing finite upper bounds.  An implicit ``+Inf``
        bucket catches everything above the last edge (Prometheus
        convention).  The edges are frozen at construction — fixed edges
        are what make two runs' histograms structurally comparable.
    """

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise ValueError("a histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must be strictly increasing, got {edges}")
        self.buckets = edges

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(len(self.buckets) + 1)  # +1 for the +Inf bucket

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labelled series."""
        series = self._series_for(labels)
        value = float(value)
        index = len(self.buckets)  # the +Inf bucket
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                index = i
                break
        series.counts[index] += 1  # type: ignore[union-attr]
        series.sum += value  # type: ignore[union-attr]
        series.count += 1  # type: ignore[union-attr]

    def time(self, **labels: object):
        """Context manager observing the elapsed :func:`monotonic` seconds."""
        return _HistogramTimer(self, labels)

    def series(self, **labels: object) -> Optional[_HistogramSeries]:
        """The raw series for a label set (None if never observed)."""
        return self._series.get(_label_key(labels))  # type: ignore[return-value]

    def cumulative_counts(self, **labels: object) -> List[int]:
        """Prometheus-style cumulative counts per edge (plus +Inf last)."""
        series = self.series(**labels)
        if series is None:
            return [0] * (len(self.buckets) + 1)
        out: List[int] = []
        running = 0
        for count in series.counts:
            running += count
            out.append(running)
        return out


class _HistogramTimer:
    """``with histogram.time(...):`` — observes elapsed monotonic seconds."""

    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: Histogram, labels: Mapping[str, object]) -> None:
        self._histogram = histogram
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = monotonic()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(monotonic() - self._start, **self._labels)


class MetricsRegistry:
    """A string-keyed registry of metrics, mirroring :class:`repro.api.registry.Registry`.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the metric, later calls return the same object (and
    reject a type or help-text mismatch — one name, one meaning).  Iteration
    and every exported snapshot are in sorted-name order, so a registry's
    rendering is a pure function of its contents.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- get-or-create -----------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.type_name}, not a histogram"
                )
            if existing.buckets != tuple(float(edge) for edge in buckets):
                raise ValueError(
                    f"histogram {name!r} is already registered with edges "
                    f"{existing.buckets}; edges are fixed at first registration"
                )
            return existing
        metric = Histogram(name, help, buckets=buckets)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls: type, name: str, help: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise TypeError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.type_name}, not a {cls.type_name}"  # type: ignore[attr-defined]
                )
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> Metric:
        """The registered metric named ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def names(self) -> Tuple[str, ...]:
        """Registered metric names, sorted."""
        return tuple(sorted(self._metrics))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self._metrics)} metric(s))"
