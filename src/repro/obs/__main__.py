"""``python -m repro.obs`` — run an observed serve session, or re-render exports.

Two subcommands:

``serve scenario.json``
    Train the scenario and serve every slot's campaign with a full
    :class:`~repro.obs.Observability` bundle attached — metrics always,
    request tracing with ``--trace out.json``, phase profiling with
    ``--profile``.  Accepts every knob of ``python -m repro.api.cli serve``.
    The final metrics registry is written with ``--prom`` / ``--obs-json``;
    when neither is given, the Prometheus text exposition prints to stdout.

``render snapshot.json``
    Re-render a saved JSON metrics snapshot (``--obs-json`` output) as
    Prometheus text — snapshots round-trip losslessly through
    :func:`~repro.obs.export.registry_from_snapshot`.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

from repro.api import cli as api_cli
from repro.api.session import Session
from repro.obs import Observability, registry_from_snapshot, render_prometheus


def serve_obs_command(args: argparse.Namespace) -> int:
    """Train + serve a scenario with observability attached; export the results."""
    spec, replicas, max_batch, max_inflight = api_cli._resolve_serve_spec(args)
    obs = Observability(
        trace=args.trace is not None,
        profile=bool(args.profile),
        snapshot_every=int(args.obs_snapshot_every),
    )
    session = Session.from_spec(spec)
    session.train(obs=obs)
    report, stats = session.serve(
        replicas=replicas, max_batch=max_batch, max_inflight=max_inflight, obs=obs
    )
    api_cli._print_serve_report(spec, report, stats)
    api_cli.write_obs_outputs(obs, args)
    if args.prom is None and args.obs_json is None:
        print()
        print(obs.prometheus(), end="")
    return 0


def render_command(args: argparse.Namespace) -> int:
    """Re-render a saved JSON metrics snapshot as Prometheus text."""
    registry = registry_from_snapshot(
        json.loads(args.snapshot.read_text(encoding="utf-8"))
    )
    print(render_prometheus(registry), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observed serve sessions: metrics, request traces, profiles",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    serve_parser = subparsers.add_parser(
        "serve",
        help="train + serve a scenario with metrics/tracing/profiling attached",
    )
    api_cli.add_serve_arguments(serve_parser)
    serve_parser.set_defaults(func=serve_obs_command)

    render_parser = subparsers.add_parser(
        "render", help="re-render a saved --obs-json snapshot as Prometheus text"
    )
    render_parser.add_argument(
        "snapshot", type=Path, help="path to a JSON metrics snapshot"
    )
    render_parser.set_defaults(func=render_command)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
