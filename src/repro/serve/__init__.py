"""``repro.serve`` — a multi-campaign decision server with dynamic micro-batching.

The serving layer turns the library's batched kernels (stacked Q-network
forwards, batched ALS completions, pooled LOO assessments) into a shared
online service: any number of concurrently running campaigns submit
``select_cell`` / ``assess_quality`` / ``complete_matrix`` requests to one
:class:`DecisionServer`, which coalesces them into fused batched calls and
memoises completions in an LRU :class:`CompletionCache`.

* :mod:`repro.serve.batcher` — :class:`MicroBatcher` (per-tenant fair batch
  assembly), the deterministic :class:`TickClock`, and :class:`PendingResult`
  futures.
* :mod:`repro.serve.cache` — content-fingerprint completion caching
  (:class:`CompletionCache`, :class:`CachingInference`).
* :mod:`repro.serve.server` — :class:`DecisionServer`, :class:`ServeConfig`,
  and the cooperative :func:`drive` scheduler.
* :mod:`repro.serve.stats` — :class:`ServerStats` telemetry, including
  per-campaign fairness counters (:class:`TenantStats`).
* :mod:`repro.serve.journal` — the :class:`RequestJournal` flight recorder
  and the :func:`replay_journal` differential replay driver.
* :mod:`repro.serve.checkpoint` — :class:`ServerCheckpoint`, freezing a
  quiescent session for bitwise resumption.

The campaign-side client adapter lives in :mod:`repro.mcs.served`
(:class:`~repro.mcs.served.ServedCampaignRunner`), and
:meth:`repro.api.session.Session.serve` drives a whole scenario — every
slot, across datasets — through one server.
"""

from repro.serve.batcher import (
    DEFAULT_TENANT,
    MicroBatcher,
    PendingResult,
    ServeRequest,
    TickClock,
)
from repro.serve.cache import (
    CachingInference,
    CompletionCache,
    inference_fingerprint,
    matrix_fingerprint,
)
from repro.serve.checkpoint import ServerCheckpoint
from repro.serve.journal import (
    ReplayReport,
    RequestJournal,
    diff_journals,
    replay_journal,
    weights_fingerprint,
)
from repro.serve.server import CYCLE_BARRIER, DecisionServer, ServeConfig, drive
from repro.serve.stats import EndpointStats, LatencyReservoir, ServerStats, TenantStats

__all__ = [
    "CYCLE_BARRIER",
    "CachingInference",
    "CompletionCache",
    "DEFAULT_TENANT",
    "DecisionServer",
    "EndpointStats",
    "LatencyReservoir",
    "MicroBatcher",
    "PendingResult",
    "ReplayReport",
    "RequestJournal",
    "ServeConfig",
    "ServeRequest",
    "ServerCheckpoint",
    "ServerStats",
    "TenantStats",
    "TickClock",
    "diff_journals",
    "drive",
    "inference_fingerprint",
    "matrix_fingerprint",
    "replay_journal",
    "weights_fingerprint",
]
