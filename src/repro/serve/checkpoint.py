"""Server checkpoints: freeze a quiescent serving session, resume it bitwise.

:class:`ServerCheckpoint` captures everything on the *server* side of a
serving session that a resumed run must reproduce: the logical
:class:`~repro.serve.batcher.TickClock`, the
:class:`~repro.serve.batcher.MicroBatcher`'s scheduling state (the global
sequence counter that orders fairness and the journal), the
:class:`~repro.serve.cache.CompletionCache` contents (entries, LRU order,
hit/miss counters), and the full :class:`~repro.serve.stats.ServerStats`
telemetry.  Campaign-side state (observed matrices, policy/assessor RNG
streams, learner replay and weight-store state) travels alongside in the
checkpoint's extra payload — see
:meth:`~repro.mcs.served.ServedCampaignRunner.slot_states` and
:meth:`~repro.api.session.Session.serve`'s ``checkpoint_after``.

Checkpoints are only valid at *quiescent* points — no request in flight —
which the cooperative scheduler reaches at every cycle boundary.
:meth:`capture` enforces this: a checkpoint that silently dropped pending
futures could never resume bitwise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Union

CHECKPOINT_VERSION = 1


@dataclass
class ServerCheckpoint:
    """A JSON-able snapshot of a quiescent serving session.

    ``payload`` holds the server's own state under ``"server"`` plus any
    extra session-level entries the caller passed to :meth:`capture`
    (scenario spec, serve knobs, the boundary cycle, per-launch slot
    states).  The whole payload round-trips through :meth:`save` /
    :meth:`load` losslessly — arrays and RNG streams inside slot states are
    already encoded by :mod:`repro.utils.statedict`.
    """

    payload: Dict[str, Any]

    @classmethod
    def capture(cls, server: Any, **extra: Any) -> "ServerCheckpoint":
        """Snapshot ``server`` (which must be quiescent) plus ``extra`` entries."""
        pending = server.pending
        if pending:
            raise RuntimeError(
                f"cannot checkpoint a server with {pending} pending request(s); "
                "drive it to a cycle boundary first"
            )
        payload: Dict[str, Any] = {
            "version": CHECKPOINT_VERSION,
            "server": {
                "clock": server.clock.as_dict(),
                "batcher": server.batcher.state_dict(),
                "cache": server.cache.state_dict(),
                "stats": server.stats.state_dict(),
            },
        }
        for key, value in extra.items():
            if key in payload:
                raise ValueError(f"reserved checkpoint key: {key!r}")
            payload[key] = value
        return cls(payload=payload)

    def restore(self, server: Any) -> None:
        """Load the captured server state onto a freshly built ``server``.

        The server's clock object is mutated in place (batcher and weight
        stores share it by reference), and the batcher/cache/stats are
        restored through their ``load_state_dict`` round-trips.  The target
        server must itself be quiescent.
        """
        state: Mapping[str, Any] = self.payload["server"]
        clock_now = int(state["clock"]["now"])
        behind = clock_now - server.clock.now()
        if behind < 0:
            raise RuntimeError(
                f"cannot rewind the server clock from {server.clock.now()} "
                f"to {clock_now}; restore onto a fresh server"
            )
        server.clock.advance(behind)
        server.batcher.load_state_dict(state["batcher"])
        server.cache.load_state_dict(state["cache"])
        server.stats.load_state_dict(state["stats"])

    # -- persistence -------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the checkpoint as a single JSON document."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.payload, sort_keys=True), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ServerCheckpoint":
        """Read :meth:`save` output back."""
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = int(payload.get("version", 0))
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {version} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return cls(payload=payload)
