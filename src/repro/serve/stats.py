"""Server telemetry: request counts, batch occupancy, latency, cache hit rate.

Two reporting views coexist:

* :meth:`ServerStats.as_dict` — the full operational snapshot, including
  wall-clock latency percentiles measured with
  :func:`repro.utils.timing.monotonic`;
* :meth:`ServerStats.deterministic_dict` — the subset that is a pure
  function of the request schedule (request/batch/tick/tenant/cache/learner
  counters, no wall-clock seconds).  This is the view the serving journal
  records and the differential replay harness compares, because two bitwise
  identical runs still take different nanoseconds per batch.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Iterable, Iterator, List, Mapping, Optional

import numpy as np

from repro.utils.timing import monotonic

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.serve.cache import CompletionCache


class LatencyReservoir:
    """A bounded window of the most recent latency samples.

    Keeps the last ``capacity`` samples in a fixed-size ring plus a ``seen``
    counter of everything ever recorded, so a long-lived server's latency
    memory is bounded while percentiles stay meaningful (they describe the
    retained window).  Keep-last is deliberate: it is deterministic and
    seedless — unlike probabilistic reservoir sampling, two identical
    request schedules retain identical windows — which the serving stack's
    bitwise-reproducibility guarantees require.
    """

    __slots__ = ("capacity", "seen", "_samples")

    DEFAULT_CAPACITY = 512

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if int(capacity) < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.seen = 0
        self._samples: Deque[float] = deque(maxlen=self.capacity)

    def append(self, sample: float) -> None:
        self._samples.append(float(sample))
        self.seen += 1

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.append(sample)

    def samples(self) -> List[float]:
        """The retained window, oldest first."""
        return list(self._samples)

    def __iter__(self) -> Iterator[float]:
        return iter(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)

    def __eq__(self, other: object) -> bool:
        """Equal to another reservoir (same window + counters) or to a plain
        sample sequence (the retained window) — the shape the field held
        before it was bounded."""
        if isinstance(other, LatencyReservoir):
            return (self.capacity, self.seen, self.samples()) == (
                other.capacity,
                other.seen,
                other.samples(),
            )
        if isinstance(other, (list, tuple)):
            return self.samples() == [float(sample) for sample in other]
        return NotImplemented

    def state_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "seen": self.seen,
            "samples": self.samples(),
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.capacity = int(state["capacity"])  # type: ignore[arg-type]
        self._samples = deque(
            (float(sample) for sample in state["samples"]),  # type: ignore[union-attr]
            maxlen=self.capacity,
        )
        self.seen = int(state["seen"])  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyReservoir({len(self._samples)}/{self.capacity}, seen={self.seen})"
        )


@dataclass
class EndpointStats:
    """Counters for one endpoint (request kind)."""

    requests: int = 0
    batches: int = 0
    batched_requests: int = 0
    seconds: float = 0.0
    #: Per-request service latency samples: a request completes when its
    #: batch's handler completes, so each request in a flushed batch records
    #: that batch's handler duration.  Bounded: a :class:`LatencyReservoir`
    #: keeps the most recent window, so long-lived servers don't accumulate
    #: one float per request forever.
    latencies: LatencyReservoir = field(default_factory=LatencyReservoir)

    def __post_init__(self) -> None:
        # Accept a plain sample list (the field's pre-reservoir shape) and
        # adopt it as the retained window.
        if not isinstance(self.latencies, LatencyReservoir):
            samples = self.latencies
            self.latencies = LatencyReservoir()
            self.latencies.extend(samples)

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean number of requests fused per flushed batch (NaN before any flush)."""
        if self.batches == 0:
            return float("nan")
        return self.batched_requests / self.batches

    @property
    def mean_latency_seconds(self) -> float:
        """Mean handler wall-clock seconds per request (NaN before any flush)."""
        if self.batched_requests == 0:
            return float("nan")
        return self.seconds / self.batched_requests

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of per-request latency (NaN before any flush).

        Computed over the reservoir's retained window.  Well-defined at the
        edges: with a single sample every percentile is that sample, and
        with all-equal samples (the common case — every request in a batch
        records the same handler duration) every percentile is that shared
        value.
        """
        if not self.latencies:
            return float("nan")
        return float(np.percentile(self.latencies.samples(), q))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly counters; derived fields are None before any flush."""
        flushed = bool(self.batched_requests)
        return {
            "requests": self.requests,
            "batches": self.batches,
            "mean_batch_occupancy": round(self.mean_batch_occupancy, 3)
            if self.batches
            else None,
            "seconds": round(self.seconds, 4),
            "mean_latency_seconds": round(self.mean_latency_seconds, 6)
            if flushed
            else None,
            "p50_latency_seconds": round(self.latency_percentile(50), 6)
            if flushed
            else None,
            "p99_latency_seconds": round(self.latency_percentile(99), 6)
            if flushed
            else None,
        }

    def deterministic_dict(self) -> Dict[str, object]:
        """The schedule-determined subset of :meth:`as_dict` (no wall clock)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_batch_occupancy": round(self.mean_batch_occupancy, 3)
            if self.batches
            else None,
        }

    def state_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "seconds": self.seconds,
            "latencies": self.latencies.state_dict(),
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.requests = int(state["requests"])  # type: ignore[arg-type]
        self.batches = int(state["batches"])  # type: ignore[arg-type]
        self.batched_requests = int(state["batched_requests"])  # type: ignore[arg-type]
        self.seconds = float(state["seconds"])  # type: ignore[arg-type]
        recorded = state["latencies"]
        self.latencies = LatencyReservoir()
        if isinstance(recorded, Mapping):
            self.latencies.load_state_dict(recorded)
        else:
            # Checkpoints from before the bounded reservoir stored a plain
            # sample list; adopt it as the retained window.
            self.latencies.extend(float(sample) for sample in recorded)  # type: ignore[union-attr]


@dataclass
class TenantStats:
    """Fairness counters for one tenant (campaign id).

    ``starved_flushes`` counts flushes of an endpoint where this tenant had
    requests pending but contributed none to the assembled batch — the
    scheduler's round-robin guarantees this only happens when a batch fills
    with one-request-per-tenant rounds before reaching it, so a growing
    counter is the signature of an oversubscribed endpoint, not of a
    misbehaving scheduler.
    """

    requests: int = 0
    served: int = 0
    starved_flushes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "served": self.served,
            "starved_flushes": self.starved_flushes,
        }

    def state_dict(self) -> Dict[str, int]:
        return self.as_dict()

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.requests = int(state["requests"])  # type: ignore[arg-type]
        self.served = int(state["served"])  # type: ignore[arg-type]
        self.starved_flushes = int(state["starved_flushes"])  # type: ignore[arg-type]


@dataclass
class ServerStats:
    """Aggregated decision-server telemetry.

    Endpoint counters are recorded by the server as requests arrive and
    batches flush; the cache's hit/miss counters are read live from the
    attached :class:`~repro.serve.cache.CompletionCache`, so this object is
    always current — snapshot it with :meth:`as_dict` for reporting.
    Learner telemetry (weight-version staleness, per-campaign replay
    accounting) is pushed by the server after every ``learn`` flush, one
    entry per learner instance.  Tenant counters track per-campaign request
    volume and fairness (see :class:`TenantStats`).
    """

    endpoints: Dict[str, EndpointStats] = field(default_factory=dict)
    ticks: int = 0
    cache: Optional["CompletionCache"] = None
    learners: Dict[str, Dict[str, object]] = field(default_factory=dict)
    tenants: Dict[str, TenantStats] = field(default_factory=dict)

    # -- recording (used by the server) -----------------------------------------

    def endpoint(self, kind: str) -> EndpointStats:
        """The (auto-created) counters for ``kind``."""
        if kind not in self.endpoints:
            self.endpoints[kind] = EndpointStats()
        return self.endpoints[kind]

    def tenant(self, label: str) -> TenantStats:
        """The (auto-created) fairness counters for tenant ``label``."""
        if label not in self.tenants:
            self.tenants[label] = TenantStats()
        return self.tenants[label]

    def record_request(self, kind: str, *, tenant: Optional[str] = None) -> None:
        self.endpoint(kind).requests += 1
        if tenant is not None:
            self.tenant(tenant).requests += 1

    def record_fairness(self, served, starved) -> None:
        """Account one assembled batch: who got slots, who waited it out."""
        for label in served:
            self.tenant(label).served += 1
        for label in starved:
            self.tenant(label).starved_flushes += 1

    @contextmanager
    def record_batch(self, kind: str, size: int):
        """Context manager timing one flushed batch of ``size`` requests."""
        endpoint = self.endpoint(kind)
        start = monotonic()
        try:
            yield
        finally:
            elapsed = monotonic() - start
            endpoint.batches += 1
            endpoint.batched_requests += int(size)
            endpoint.seconds += elapsed
            endpoint.latencies.extend([elapsed] * int(size))

    def record_learner(self, label: str, telemetry: Dict[str, object]) -> None:
        """Store the latest telemetry snapshot for the learner named ``label``."""
        self.learners[str(label)] = dict(telemetry)

    # -- cache passthroughs -----------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    @property
    def cache_hit_rate(self) -> float:
        if self.cache is None:
            return float("nan")
        return self.cache.hit_rate

    # -- reporting --------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """One JSON-friendly snapshot of everything."""
        total = self.cache_hits + self.cache_misses
        return {
            "endpoints": {
                kind: stats.as_dict() for kind, stats in self.endpoints.items()
            },
            "ticks": self.ticks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4) if total else None,
            "learners": {label: dict(data) for label, data in self.learners.items()},
            "tenants": {
                label: tenant.as_dict() for label, tenant in self.tenants.items()
            },
        }

    def deterministic_dict(self) -> Dict[str, object]:
        """The schedule-determined snapshot (no wall-clock fields).

        Two runs with identical request schedules and identical component
        seeds produce identical ``deterministic_dict()`` output — this is
        the stats view the journal records and replay verification diffs.
        """
        total = self.cache_hits + self.cache_misses
        return {
            "endpoints": {
                kind: stats.deterministic_dict()
                for kind, stats in self.endpoints.items()
            },
            "ticks": self.ticks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4) if total else None,
            "learners": {label: dict(data) for label, data in self.learners.items()},
            "tenants": {
                label: tenant.as_dict() for label, tenant in self.tenants.items()
            },
        }

    def rows(self) -> List[Dict[str, object]]:
        """Per-endpoint rows for tabular reporting (one dict per kind)."""
        return [
            {"endpoint": kind, **stats.as_dict()}
            for kind, stats in self.endpoints.items()
        ]

    def metrics(self) -> Dict[str, object]:
        """The canonical ``repro_serve_*`` metric view of this snapshot.

        Flat ``name{label="value"}`` sample keys, identical to what
        :mod:`repro.obs` exports for this object; :meth:`as_dict` remains
        the backwards-compatible legacy shape.
        """
        from repro.obs.adapters import server_stats_metrics

        return server_stats_metrics(self)

    # -- round-tripping ----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable counters (the live cache reference is *not* included)."""
        return {
            "endpoints": {
                kind: stats.state_dict() for kind, stats in self.endpoints.items()
            },
            "ticks": self.ticks,
            "learners": {label: dict(data) for label, data in self.learners.items()},
            "tenants": {
                label: tenant.state_dict() for label, tenant in self.tenants.items()
            },
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore :meth:`state_dict` output (cache wiring is left untouched)."""
        self.endpoints = {}
        for kind, endpoint_state in state["endpoints"].items():  # type: ignore[union-attr]
            self.endpoint(kind).load_state_dict(endpoint_state)
        self.ticks = int(state["ticks"])  # type: ignore[arg-type]
        self.learners = {
            label: dict(data)
            for label, data in state["learners"].items()  # type: ignore[union-attr]
        }
        self.tenants = {}
        for label, tenant_state in state["tenants"].items():  # type: ignore[union-attr]
            self.tenant(label).load_state_dict(tenant_state)
