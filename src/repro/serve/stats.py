"""Server telemetry: request counts, batch occupancy, latency, cache hit rate."""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.utils.timing import monotonic

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.serve.cache import CompletionCache


@dataclass
class EndpointStats:
    """Counters for one endpoint (request kind)."""

    requests: int = 0
    batches: int = 0
    batched_requests: int = 0
    seconds: float = 0.0
    #: Per-request service latency samples: a request completes when its
    #: batch's handler completes, so each request in a flushed batch records
    #: that batch's handler duration.  Exact (no reservoir) — the serving
    #: runs are deterministic and bounded, so the sample set stays small.
    latencies: List[float] = field(default_factory=list)

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean number of requests fused per flushed batch (NaN before any flush)."""
        if self.batches == 0:
            return float("nan")
        return self.batched_requests / self.batches

    @property
    def mean_latency_seconds(self) -> float:
        """Mean handler wall-clock seconds per request (NaN before any flush)."""
        if self.batched_requests == 0:
            return float("nan")
        return self.seconds / self.batched_requests

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of per-request latency (NaN before any flush)."""
        if not self.latencies:
            return float("nan")
        return float(np.percentile(self.latencies, q))

    def as_dict(self) -> Dict[str, object]:
        flushed = bool(self.batched_requests)
        return {
            "requests": self.requests,
            "batches": self.batches,
            "mean_batch_occupancy": round(self.mean_batch_occupancy, 3)
            if self.batches
            else None,
            "seconds": round(self.seconds, 4),
            "mean_latency_seconds": round(self.mean_latency_seconds, 6)
            if flushed
            else None,
            "p50_latency_seconds": round(self.latency_percentile(50), 6)
            if flushed
            else None,
            "p99_latency_seconds": round(self.latency_percentile(99), 6)
            if flushed
            else None,
        }


@dataclass
class ServerStats:
    """Aggregated decision-server telemetry.

    Endpoint counters are recorded by the server as requests arrive and
    batches flush; the cache's hit/miss counters are read live from the
    attached :class:`~repro.serve.cache.CompletionCache`, so this object is
    always current — snapshot it with :meth:`as_dict` for reporting.
    Learner telemetry (weight-version staleness, per-campaign replay
    accounting) is pushed by the server after every ``learn`` flush, one
    entry per learner instance.
    """

    endpoints: Dict[str, EndpointStats] = field(default_factory=dict)
    ticks: int = 0
    cache: Optional["CompletionCache"] = None
    learners: Dict[str, Dict[str, object]] = field(default_factory=dict)

    # -- recording (used by the server) -----------------------------------------

    def endpoint(self, kind: str) -> EndpointStats:
        """The (auto-created) counters for ``kind``."""
        if kind not in self.endpoints:
            self.endpoints[kind] = EndpointStats()
        return self.endpoints[kind]

    def record_request(self, kind: str) -> None:
        self.endpoint(kind).requests += 1

    @contextmanager
    def record_batch(self, kind: str, size: int):
        """Context manager timing one flushed batch of ``size`` requests."""
        endpoint = self.endpoint(kind)
        start = monotonic()
        try:
            yield
        finally:
            elapsed = monotonic() - start
            endpoint.batches += 1
            endpoint.batched_requests += int(size)
            endpoint.seconds += elapsed
            endpoint.latencies.extend([elapsed] * int(size))

    def record_learner(self, label: str, telemetry: Dict[str, object]) -> None:
        """Store the latest telemetry snapshot for the learner named ``label``."""
        self.learners[str(label)] = dict(telemetry)

    # -- cache passthroughs -----------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    @property
    def cache_hit_rate(self) -> float:
        if self.cache is None:
            return float("nan")
        return self.cache.hit_rate

    # -- reporting --------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """One JSON-friendly snapshot of everything."""
        total = self.cache_hits + self.cache_misses
        return {
            "endpoints": {
                kind: stats.as_dict() for kind, stats in self.endpoints.items()
            },
            "ticks": self.ticks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4) if total else None,
            "learners": {label: dict(data) for label, data in self.learners.items()},
        }

    def rows(self) -> List[Dict[str, object]]:
        """Per-endpoint rows for tabular reporting (one dict per kind)."""
        return [
            {"endpoint": kind, **stats.as_dict()}
            for kind, stats in self.endpoints.items()
        ]
