"""Server telemetry: request counts, batch occupancy, latency, cache hit rate.

Two reporting views coexist:

* :meth:`ServerStats.as_dict` — the full operational snapshot, including
  wall-clock latency percentiles measured with
  :func:`repro.utils.timing.monotonic`;
* :meth:`ServerStats.deterministic_dict` — the subset that is a pure
  function of the request schedule (request/batch/tick/tenant/cache/learner
  counters, no wall-clock seconds).  This is the view the serving journal
  records and the differential replay harness compares, because two bitwise
  identical runs still take different nanoseconds per batch.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

import numpy as np

from repro.utils.timing import monotonic

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.serve.cache import CompletionCache


@dataclass
class EndpointStats:
    """Counters for one endpoint (request kind)."""

    requests: int = 0
    batches: int = 0
    batched_requests: int = 0
    seconds: float = 0.0
    #: Per-request service latency samples: a request completes when its
    #: batch's handler completes, so each request in a flushed batch records
    #: that batch's handler duration.  Exact (no reservoir) — the serving
    #: runs are deterministic and bounded, so the sample set stays small.
    latencies: List[float] = field(default_factory=list)

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean number of requests fused per flushed batch (NaN before any flush)."""
        if self.batches == 0:
            return float("nan")
        return self.batched_requests / self.batches

    @property
    def mean_latency_seconds(self) -> float:
        """Mean handler wall-clock seconds per request (NaN before any flush)."""
        if self.batched_requests == 0:
            return float("nan")
        return self.seconds / self.batched_requests

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of per-request latency (NaN before any flush).

        Well-defined at the edges: with a single sample every percentile is
        that sample, and with all-equal samples (the common case — every
        request in a batch records the same handler duration) every
        percentile is that shared value.
        """
        if not self.latencies:
            return float("nan")
        return float(np.percentile(self.latencies, q))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly counters; derived fields are None before any flush."""
        flushed = bool(self.batched_requests)
        return {
            "requests": self.requests,
            "batches": self.batches,
            "mean_batch_occupancy": round(self.mean_batch_occupancy, 3)
            if self.batches
            else None,
            "seconds": round(self.seconds, 4),
            "mean_latency_seconds": round(self.mean_latency_seconds, 6)
            if flushed
            else None,
            "p50_latency_seconds": round(self.latency_percentile(50), 6)
            if flushed
            else None,
            "p99_latency_seconds": round(self.latency_percentile(99), 6)
            if flushed
            else None,
        }

    def deterministic_dict(self) -> Dict[str, object]:
        """The schedule-determined subset of :meth:`as_dict` (no wall clock)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_batch_occupancy": round(self.mean_batch_occupancy, 3)
            if self.batches
            else None,
        }

    def state_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "seconds": self.seconds,
            "latencies": list(self.latencies),
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.requests = int(state["requests"])  # type: ignore[arg-type]
        self.batches = int(state["batches"])  # type: ignore[arg-type]
        self.batched_requests = int(state["batched_requests"])  # type: ignore[arg-type]
        self.seconds = float(state["seconds"])  # type: ignore[arg-type]
        self.latencies = [float(sample) for sample in state["latencies"]]  # type: ignore[union-attr]


@dataclass
class TenantStats:
    """Fairness counters for one tenant (campaign id).

    ``starved_flushes`` counts flushes of an endpoint where this tenant had
    requests pending but contributed none to the assembled batch — the
    scheduler's round-robin guarantees this only happens when a batch fills
    with one-request-per-tenant rounds before reaching it, so a growing
    counter is the signature of an oversubscribed endpoint, not of a
    misbehaving scheduler.
    """

    requests: int = 0
    served: int = 0
    starved_flushes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "served": self.served,
            "starved_flushes": self.starved_flushes,
        }

    def state_dict(self) -> Dict[str, int]:
        return self.as_dict()

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.requests = int(state["requests"])  # type: ignore[arg-type]
        self.served = int(state["served"])  # type: ignore[arg-type]
        self.starved_flushes = int(state["starved_flushes"])  # type: ignore[arg-type]


@dataclass
class ServerStats:
    """Aggregated decision-server telemetry.

    Endpoint counters are recorded by the server as requests arrive and
    batches flush; the cache's hit/miss counters are read live from the
    attached :class:`~repro.serve.cache.CompletionCache`, so this object is
    always current — snapshot it with :meth:`as_dict` for reporting.
    Learner telemetry (weight-version staleness, per-campaign replay
    accounting) is pushed by the server after every ``learn`` flush, one
    entry per learner instance.  Tenant counters track per-campaign request
    volume and fairness (see :class:`TenantStats`).
    """

    endpoints: Dict[str, EndpointStats] = field(default_factory=dict)
    ticks: int = 0
    cache: Optional["CompletionCache"] = None
    learners: Dict[str, Dict[str, object]] = field(default_factory=dict)
    tenants: Dict[str, TenantStats] = field(default_factory=dict)

    # -- recording (used by the server) -----------------------------------------

    def endpoint(self, kind: str) -> EndpointStats:
        """The (auto-created) counters for ``kind``."""
        if kind not in self.endpoints:
            self.endpoints[kind] = EndpointStats()
        return self.endpoints[kind]

    def tenant(self, label: str) -> TenantStats:
        """The (auto-created) fairness counters for tenant ``label``."""
        if label not in self.tenants:
            self.tenants[label] = TenantStats()
        return self.tenants[label]

    def record_request(self, kind: str, *, tenant: Optional[str] = None) -> None:
        self.endpoint(kind).requests += 1
        if tenant is not None:
            self.tenant(tenant).requests += 1

    def record_fairness(self, served, starved) -> None:
        """Account one assembled batch: who got slots, who waited it out."""
        for label in served:
            self.tenant(label).served += 1
        for label in starved:
            self.tenant(label).starved_flushes += 1

    @contextmanager
    def record_batch(self, kind: str, size: int):
        """Context manager timing one flushed batch of ``size`` requests."""
        endpoint = self.endpoint(kind)
        start = monotonic()
        try:
            yield
        finally:
            elapsed = monotonic() - start
            endpoint.batches += 1
            endpoint.batched_requests += int(size)
            endpoint.seconds += elapsed
            endpoint.latencies.extend([elapsed] * int(size))

    def record_learner(self, label: str, telemetry: Dict[str, object]) -> None:
        """Store the latest telemetry snapshot for the learner named ``label``."""
        self.learners[str(label)] = dict(telemetry)

    # -- cache passthroughs -----------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    @property
    def cache_hit_rate(self) -> float:
        if self.cache is None:
            return float("nan")
        return self.cache.hit_rate

    # -- reporting --------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """One JSON-friendly snapshot of everything."""
        total = self.cache_hits + self.cache_misses
        return {
            "endpoints": {
                kind: stats.as_dict() for kind, stats in self.endpoints.items()
            },
            "ticks": self.ticks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4) if total else None,
            "learners": {label: dict(data) for label, data in self.learners.items()},
            "tenants": {
                label: tenant.as_dict() for label, tenant in self.tenants.items()
            },
        }

    def deterministic_dict(self) -> Dict[str, object]:
        """The schedule-determined snapshot (no wall-clock fields).

        Two runs with identical request schedules and identical component
        seeds produce identical ``deterministic_dict()`` output — this is
        the stats view the journal records and replay verification diffs.
        """
        total = self.cache_hits + self.cache_misses
        return {
            "endpoints": {
                kind: stats.deterministic_dict()
                for kind, stats in self.endpoints.items()
            },
            "ticks": self.ticks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4) if total else None,
            "learners": {label: dict(data) for label, data in self.learners.items()},
            "tenants": {
                label: tenant.as_dict() for label, tenant in self.tenants.items()
            },
        }

    def rows(self) -> List[Dict[str, object]]:
        """Per-endpoint rows for tabular reporting (one dict per kind)."""
        return [
            {"endpoint": kind, **stats.as_dict()}
            for kind, stats in self.endpoints.items()
        ]

    # -- round-tripping ----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable counters (the live cache reference is *not* included)."""
        return {
            "endpoints": {
                kind: stats.state_dict() for kind, stats in self.endpoints.items()
            },
            "ticks": self.ticks,
            "learners": {label: dict(data) for label, data in self.learners.items()},
            "tenants": {
                label: tenant.state_dict() for label, tenant in self.tenants.items()
            },
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore :meth:`state_dict` output (cache wiring is left untouched)."""
        self.endpoints = {}
        for kind, endpoint_state in state["endpoints"].items():  # type: ignore[union-attr]
            self.endpoint(kind).load_state_dict(endpoint_state)
        self.ticks = int(state["ticks"])  # type: ignore[arg-type]
        self.learners = {
            label: dict(data)
            for label, data in state["learners"].items()  # type: ignore[union-attr]
        }
        self.tenants = {}
        for label, tenant_state in state["tenants"].items():  # type: ignore[union-attr]
            self.tenant(label).load_state_dict(tenant_state)
