"""Dynamic micro-batching primitives: requests, futures, clock, batcher.

The decision server accepts requests from any number of concurrently
running campaigns and answers them in fused batches.  The moving parts:

* :class:`PendingResult` — the handle a client holds while its request sits
  in a queue; resolved (value or exception) when the batch it joined is
  flushed.
* :class:`TickClock` — a deterministic logical clock.  The serving layer has
  no wall-clock deadlines: "time" advances only when the scheduler says so,
  which makes flush timing — and therefore every batched computation —
  reproducible under a fixed request schedule.
* :class:`MicroBatcher` — per-endpoint, per-tenant FIFO queues with the two
  classic flush triggers: an endpoint is *due* when it holds ``max_batch``
  requests (flush for occupancy) or when its oldest request has waited
  ``max_wait_ticks`` clock ticks (flush for latency).

Fairness
--------
Within one endpoint, requests are bucketed by *tenant* (campaign id) and a
batch is assembled round-robin across tenants — one request per tenant per
round, rounds ordered by each tenant's oldest pending sequence number —
optionally capped at ``max_inflight_per_tenant`` requests per tenant per
batch.  A chatty campaign therefore cannot push another campaign's requests
out of a batch.  Crucially the schedule is *stateless given the queues*
(no persistent rotation pointer): when every tenant has at most one pending
request — the campaign runners' steady state — the assembled batch is in
plain arrival order, so single-tenant and runner-driven traffic keeps the
exact FIFO batch composition of the original scheduler, bit for bit.

The batcher only decides *when* a batch is ready and *who* gets its slots;
*how* a batch of requests is fused into one computation is the
:class:`~repro.serve.server.DecisionServer`'s job.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from repro.utils.validation import check_positive_int

_UNSET = object()

#: Tenant id used when a request is submitted without one.
DEFAULT_TENANT = "default"


class TickClock:
    """A deterministic logical clock counting integer ticks."""

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    def now(self) -> int:
        """The current tick."""
        return self._now

    def advance(self, ticks: int = 1) -> int:
        """Advance the clock and return the new tick."""
        if int(ticks) < 0:
            raise ValueError(f"cannot advance by a negative tick count ({ticks})")
        self._now += int(ticks)
        return self._now

    # -- round-tripping ----------------------------------------------------------

    def as_dict(self) -> Dict[str, int]:
        """The clock's full state (one integer), JSON-able."""
        return {"now": self._now}

    @classmethod
    def from_dict(cls, state: Mapping[str, int]) -> "TickClock":
        """Rebuild a clock from :meth:`as_dict` output."""
        return cls(start=int(state["now"]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TickClock(now={self._now})"


class PendingResult:
    """A single-assignment future resolved when the request's batch flushes."""

    __slots__ = ("_value", "_error")

    def __init__(self) -> None:
        self._value: Any = _UNSET
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        """True once a value or an exception has been set."""
        return self._value is not _UNSET or self._error is not None

    def set_result(self, value: Any) -> None:
        if self.done:
            raise RuntimeError("PendingResult is already resolved")
        self._value = value

    def set_exception(self, error: BaseException) -> None:
        if self.done:
            raise RuntimeError("PendingResult is already resolved")
        self._error = error

    def result(self) -> Any:
        """The resolved value; raises the stored exception, or if unresolved."""
        if self._error is not None:
            raise self._error
        if self._value is _UNSET:
            raise RuntimeError(
                "PendingResult is not resolved yet; flush or drain the server first"
            )
        return self._value


@dataclass
class ServeRequest:
    """One queued request: endpoint kind, payload, tenant, and its future."""

    kind: str
    payload: Any
    future: PendingResult = field(default_factory=PendingResult)
    enqueued_at: int = 0
    sequence: int = 0
    tenant: str = DEFAULT_TENANT


class MicroBatcher:
    """Per-endpoint, per-tenant FIFO queues with fair batch assembly.

    Parameters
    ----------
    max_batch:
        Flush an endpoint as soon as it holds this many requests (across all
        of its tenants).
    max_wait_ticks:
        Flush an endpoint once its oldest request has waited this many clock
        ticks (0 = due immediately at the next poll).
    clock:
        The logical clock used to age requests; defaults to a fresh
        :class:`TickClock`.
    max_inflight_per_tenant:
        Cap on the requests one tenant may occupy in a single assembled
        batch; ``None`` leaves tenants uncapped (round-robin fairness still
        applies).  The serving layer exposes this as
        ``max_inflight_per_campaign``.
    """

    def __init__(
        self,
        *,
        max_batch: int = 32,
        max_wait_ticks: int = 2,
        clock: Optional[TickClock] = None,
        max_inflight_per_tenant: Optional[int] = None,
    ) -> None:
        self.max_batch = check_positive_int(max_batch, "max_batch")
        if int(max_wait_ticks) < 0:
            raise ValueError(f"max_wait_ticks must be >= 0, got {max_wait_ticks}")
        self.max_wait_ticks = int(max_wait_ticks)
        if max_inflight_per_tenant is not None:
            max_inflight_per_tenant = check_positive_int(
                max_inflight_per_tenant, "max_inflight_per_tenant"
            )
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.clock = clock or TickClock()
        # Optional request tracer (duck-typed — see repro.obs.trace.Tracer):
        # when set, every submitted request mints a span here, at the exact
        # point its sequence number and enqueue tick are assigned.  Purely
        # observational; excluded from state_dict.
        self.tracer: Optional[Any] = None
        # kind -> tenant -> FIFO of requests.  Kinds persist in
        # first-submission order; drained-empty tenant buckets are removed
        # (tenant order is recomputed per batch from pending sequences).
        self._queues: Dict[str, Dict[str, Deque[ServeRequest]]] = {}
        self._sequence = 0

    # -- enqueueing -------------------------------------------------------------

    def submit(
        self, kind: str, payload: Any, *, tenant: str = DEFAULT_TENANT
    ) -> ServeRequest:
        """Queue a request and return it (the caller keeps ``request.future``)."""
        if not isinstance(kind, str) or not kind:
            raise ValueError(f"request kind must be a non-empty string, got {kind!r}")
        if not isinstance(tenant, str) or not tenant:
            raise ValueError(f"tenant must be a non-empty string, got {tenant!r}")
        request = ServeRequest(
            kind=kind,
            payload=payload,
            enqueued_at=self.clock.now(),
            sequence=self._sequence,
            tenant=tenant,
        )
        self._sequence += 1
        if self.tracer is not None:
            self.tracer.begin_request(request)
        buckets = self._queues.setdefault(kind, {})
        buckets.setdefault(tenant, deque()).append(request)
        return request

    # -- inspection -------------------------------------------------------------

    def pending(self, kind: Optional[str] = None) -> int:
        """Number of queued requests, for one kind or overall."""
        if kind is not None:
            buckets = self._queues.get(kind, {})
            return sum(len(queue) for queue in buckets.values())
        return sum(
            len(queue)
            for buckets in self._queues.values()
            for queue in buckets.values()
        )

    def kinds(self) -> Tuple[str, ...]:
        """Kinds with at least one pending request, in first-submission order."""
        return tuple(
            kind
            for kind, buckets in self._queues.items()
            if any(buckets.values())
        )

    def pending_tenants(self, kind: str) -> Tuple[str, ...]:
        """Tenants with pending requests of ``kind``, oldest-pending first."""
        buckets = self._queues.get(kind, {})
        ordered = sorted(
            (queue[0].sequence, tenant)
            for tenant, queue in buckets.items()
            if queue
        )
        return tuple(tenant for _, tenant in ordered)

    def is_full(self, kind: str) -> bool:
        """True when ``kind``'s queue has reached ``max_batch``."""
        return self.pending(kind) >= self.max_batch

    def is_due(self, kind: str) -> bool:
        """True when ``kind`` should flush: full, or its oldest request aged out."""
        oldest = self.oldest_wait(kind)
        if oldest is None:
            return False
        if self.pending(kind) >= self.max_batch:
            return True
        return oldest >= self.max_wait_ticks

    def oldest_wait(self, kind: str) -> Optional[int]:
        """Ticks the oldest pending request of ``kind`` has waited (None if empty)."""
        buckets = self._queues.get(kind, {})
        oldest: Optional[int] = None
        for queue in buckets.values():
            if queue and (oldest is None or queue[0].enqueued_at < oldest):
                oldest = queue[0].enqueued_at
        if oldest is None:
            return None
        return self.clock.now() - oldest

    # -- draining ---------------------------------------------------------------

    def drain(self, kind: str, limit: Optional[int] = None) -> List[ServeRequest]:
        """Assemble one batch of up to ``limit`` (default ``max_batch``) requests.

        Round-robin across tenants: each round takes one request per tenant
        with work remaining, tenants ordered by their oldest pending
        sequence number, until the batch is full, every queue is empty, or
        every tenant hit ``max_inflight_per_tenant``.  With at most one
        pending request per tenant this degenerates to plain FIFO arrival
        order — the compatibility anchor the parity tests rely on.
        """
        buckets = self._queues.get(kind)
        if not buckets:
            return []
        limit = self.max_batch if limit is None else check_positive_int(limit, "limit")
        cap = self.max_inflight_per_tenant
        batch: List[ServeRequest] = []
        taken: Dict[str, int] = {}
        while len(batch) < limit:
            candidates = sorted(
                (queue[0].sequence, tenant)
                for tenant, queue in buckets.items()
                if queue and (cap is None or taken.get(tenant, 0) < cap)
            )
            if not candidates:
                break
            for _, tenant in candidates:
                if len(batch) >= limit:
                    break
                queue = buckets[tenant]
                if not queue or (cap is not None and taken.get(tenant, 0) >= cap):
                    continue
                batch.append(queue.popleft())
                taken[tenant] = taken.get(tenant, 0) + 1
        for tenant in [tenant for tenant, queue in buckets.items() if not queue]:
            del buckets[tenant]
        return batch

    # -- round-tripping ----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable scheduler state (requires empty queues).

        The cooperative scheduler reaches quiescence (no pending requests)
        between every scheduling round, so checkpoints are taken there; the
        only state that must survive is the global submission sequence
        counter (request sequence numbers order the fairness rotation and
        the journal).  Raises when requests are still queued — a checkpoint
        that silently dropped live futures could never resume bitwise.
        """
        pending = self.pending()
        if pending:
            raise RuntimeError(
                f"cannot checkpoint a MicroBatcher with {pending} pending "
                "request(s); flush or drain the server first"
            )
        return {
            "sequence": self._sequence,
            "max_batch": self.max_batch,
            "max_wait_ticks": self.max_wait_ticks,
            "max_inflight_per_tenant": self.max_inflight_per_tenant,
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore :meth:`state_dict` output onto this (empty) batcher."""
        if self.pending():
            raise RuntimeError("cannot restore onto a MicroBatcher with pending requests")
        self._sequence = int(state["sequence"])  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        depths = {
            kind: sum(len(queue) for queue in buckets.values())
            for kind, buckets in self._queues.items()
            if any(buckets.values())
        }
        return f"MicroBatcher(max_batch={self.max_batch}, pending={depths})"
