"""Dynamic micro-batching primitives: requests, futures, clock, batcher.

The decision server accepts requests from any number of concurrently
running campaigns and answers them in fused batches.  The moving parts:

* :class:`PendingResult` — the handle a client holds while its request sits
  in a queue; resolved (value or exception) when the batch it joined is
  flushed.
* :class:`TickClock` — a deterministic logical clock.  The serving layer has
  no wall-clock deadlines: "time" advances only when the scheduler says so,
  which makes flush timing — and therefore every batched computation —
  reproducible under a fixed request schedule.
* :class:`MicroBatcher` — per-endpoint FIFO queues with the two classic
  flush triggers: a queue is *due* when it holds ``max_batch`` requests
  (flush for occupancy) or when its oldest request has waited
  ``max_wait_ticks`` clock ticks (flush for latency).

The batcher only decides *when* a batch is ready; *how* a batch of requests
is fused into one computation is the :class:`~repro.serve.server.
DecisionServer`'s job.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.utils.validation import check_positive_int

_UNSET = object()


class TickClock:
    """A deterministic logical clock counting integer ticks."""

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    def now(self) -> int:
        """The current tick."""
        return self._now

    def advance(self, ticks: int = 1) -> int:
        """Advance the clock and return the new tick."""
        if int(ticks) < 0:
            raise ValueError(f"cannot advance by a negative tick count ({ticks})")
        self._now += int(ticks)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TickClock(now={self._now})"


class PendingResult:
    """A single-assignment future resolved when the request's batch flushes."""

    __slots__ = ("_value", "_error")

    def __init__(self) -> None:
        self._value: Any = _UNSET
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        """True once a value or an exception has been set."""
        return self._value is not _UNSET or self._error is not None

    def set_result(self, value: Any) -> None:
        if self.done:
            raise RuntimeError("PendingResult is already resolved")
        self._value = value

    def set_exception(self, error: BaseException) -> None:
        if self.done:
            raise RuntimeError("PendingResult is already resolved")
        self._error = error

    def result(self) -> Any:
        """The resolved value; raises the stored exception, or if unresolved."""
        if self._error is not None:
            raise self._error
        if self._value is _UNSET:
            raise RuntimeError(
                "PendingResult is not resolved yet; flush or drain the server first"
            )
        return self._value


@dataclass
class ServeRequest:
    """One queued request: endpoint kind, payload, and its client-facing future."""

    kind: str
    payload: Any
    future: PendingResult = field(default_factory=PendingResult)
    enqueued_at: int = 0
    sequence: int = 0


class MicroBatcher:
    """Per-endpoint FIFO queues with size- and wait-based flush triggers.

    Parameters
    ----------
    max_batch:
        Flush a queue as soon as it holds this many requests.
    max_wait_ticks:
        Flush a queue once its oldest request has waited this many clock
        ticks (0 = due immediately at the next poll).
    clock:
        The logical clock used to age requests; defaults to a fresh
        :class:`TickClock`.
    """

    def __init__(
        self,
        *,
        max_batch: int = 32,
        max_wait_ticks: int = 2,
        clock: Optional[TickClock] = None,
    ) -> None:
        self.max_batch = check_positive_int(max_batch, "max_batch")
        if int(max_wait_ticks) < 0:
            raise ValueError(f"max_wait_ticks must be >= 0, got {max_wait_ticks}")
        self.max_wait_ticks = int(max_wait_ticks)
        self.clock = clock or TickClock()
        self._queues: Dict[str, Deque[ServeRequest]] = {}
        self._sequence = 0

    # -- enqueueing -------------------------------------------------------------

    def submit(self, kind: str, payload: Any) -> ServeRequest:
        """Queue a request and return it (the caller keeps ``request.future``)."""
        if not isinstance(kind, str) or not kind:
            raise ValueError(f"request kind must be a non-empty string, got {kind!r}")
        request = ServeRequest(
            kind=kind,
            payload=payload,
            enqueued_at=self.clock.now(),
            sequence=self._sequence,
        )
        self._sequence += 1
        self._queues.setdefault(kind, deque()).append(request)
        return request

    # -- inspection -------------------------------------------------------------

    def pending(self, kind: Optional[str] = None) -> int:
        """Number of queued requests, for one kind or overall."""
        if kind is not None:
            return len(self._queues.get(kind, ()))
        return sum(len(queue) for queue in self._queues.values())

    def kinds(self) -> Tuple[str, ...]:
        """Kinds with at least one pending request, in first-submission order."""
        return tuple(kind for kind, queue in self._queues.items() if queue)

    def is_full(self, kind: str) -> bool:
        """True when ``kind``'s queue has reached ``max_batch``."""
        return self.pending(kind) >= self.max_batch

    def is_due(self, kind: str) -> bool:
        """True when ``kind`` should flush: full, or its oldest request aged out."""
        queue = self._queues.get(kind)
        if not queue:
            return False
        if len(queue) >= self.max_batch:
            return True
        return self.clock.now() - queue[0].enqueued_at >= self.max_wait_ticks

    def oldest_wait(self, kind: str) -> Optional[int]:
        """Ticks the oldest pending request of ``kind`` has waited (None if empty)."""
        queue = self._queues.get(kind)
        if not queue:
            return None
        return self.clock.now() - queue[0].enqueued_at

    # -- draining ---------------------------------------------------------------

    def drain(self, kind: str, limit: Optional[int] = None) -> List[ServeRequest]:
        """Pop up to ``limit`` (default ``max_batch``) requests of ``kind``, FIFO."""
        queue = self._queues.get(kind)
        if not queue:
            return []
        if limit is None:
            limit = self.max_batch
        batch = [queue.popleft() for _ in range(min(int(limit), len(queue)))]
        return batch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        depths = {kind: len(queue) for kind, queue in self._queues.items() if queue}
        return f"MicroBatcher(max_batch={self.max_batch}, pending={depths})"
