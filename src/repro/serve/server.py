"""The decision server: shared online endpoints for concurrent campaigns.

:class:`DecisionServer` is the serving-layer counterpart of the lockstep
runners: where :class:`~repro.mcs.campaign.BatchedCampaignRunner` fuses work
*inside* one pre-declared fleet, the server fuses work across any number of
independently running campaigns that happen to have requests in flight at
the same time.  Four endpoints cover the hot paths of a Sparse MCS
campaign:

``select_cell``
    A policy query against a (shared) DR-Cell agent.  All pending queries
    for the same agent are answered with **one stacked Q-network forward**
    (:meth:`~repro.rl.dqn.DQNAgent.select_actions`), preserving the agent's
    exploration-RNG draw order of sequential calls.
``assess_quality``
    A quality-assessment request.  Pending requests are grouped by
    (assessor, inference) *equivalence* — the same notion
    :class:`~repro.mcs.campaign.BatchedCampaignRunner` pools by — and each
    group is answered with one
    :meth:`~repro.quality.loo_bayesian.QualityAssessor.assess_many` call,
    which solves every slot's LOO completions in one batched ALS.
``complete_matrix``
    A raw matrix completion.  Pending requests are grouped by inference
    equivalence and solved with one
    :meth:`~repro.inference.base.InferenceAlgorithm.complete_batch` call.
``learn_batch``
    A tagged batch of campaign transitions for a central
    :class:`~repro.learner.core.Learner`.  Pending batches for the same
    learner are ingested in submission order with one ``ingest`` call, and
    the learner's staleness/replay telemetry is surfaced through
    :attr:`ServerStats.learners`.

Both completion-backed endpoints route their inference through a shared
:class:`~repro.serve.cache.CompletionCache`, so a partial matrix the server
has completed before — the common case for replicated campaigns and repeated
LOO loops — skips ALS entirely.

Batching is *dynamic*: requests queue in a :class:`~repro.serve.batcher.
MicroBatcher` and flush when a queue reaches ``max_batch`` or its oldest
request has waited ``max_wait_ticks`` logical clock ticks.  The clock is a
deterministic :class:`~repro.serve.batcher.TickClock`, so a fixed request
schedule always produces the same batches — and therefore bitwise-identical
results (the batched solvers are batch-composition independent).

Clients that drive whole campaigns cooperatively (see
:class:`~repro.mcs.served.ServedCampaignRunner`) are generators; the
module-level :func:`drive` scheduler advances every client until it blocks
on pending futures, then pumps the server until everything pending is
resolved, and repeats.  Requests submitted by different clients in the same
scheduling round land in the same batches — that is the cross-campaign
fusion this package exists for.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.inference.base import InferenceAlgorithm
from repro.serve.batcher import (
    DEFAULT_TENANT,
    MicroBatcher,
    PendingResult,
    ServeRequest,
    TickClock,
)
from repro.serve.cache import CachingInference, CompletionCache
from repro.serve.stats import ServerStats
from repro.utils.validation import check_positive_int

#: Endpoint kinds in flush-priority order: policy queries unblock clients that
#: still have to reveal data this round, assessments decide whether a round
#: continues, completions only close out cycles, and learn batches update the
#: central learner after the cycle's data is in.
KINDS = ("select", "assess", "complete", "learn")


@dataclass(frozen=True)
class ServeConfig:
    """Decision-server knobs.

    Attributes
    ----------
    max_batch:
        Flush an endpoint queue as soon as it holds this many requests.
    max_wait_ticks:
        Flush a queue once its oldest request has waited this many logical
        clock ticks.
    cache_capacity:
        LRU capacity of the shared completion cache.
    max_inflight_per_campaign:
        Cap on the requests one campaign (tenant) may occupy in a single
        assembled batch; ``None`` leaves campaigns uncapped.  Round-robin
        fairness across campaigns applies either way — see
        :class:`~repro.serve.batcher.MicroBatcher`.
    """

    max_batch: int = 32
    max_wait_ticks: int = 2
    cache_capacity: int = 512
    max_inflight_per_campaign: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive_int(self.max_batch, "max_batch")
        check_positive_int(self.cache_capacity, "cache_capacity")
        if int(self.max_wait_ticks) < 0:
            raise ValueError(f"max_wait_ticks must be >= 0, got {self.max_wait_ticks}")
        if self.max_inflight_per_campaign is not None:
            check_positive_int(
                self.max_inflight_per_campaign, "max_inflight_per_campaign"
            )


@dataclass
class SelectQuery:
    """Payload of a ``select_cell`` request."""

    agent: Any  # DQNAgent (DRCellAgent is unwrapped at submission)
    state: np.ndarray
    mask: np.ndarray
    greedy: bool


@dataclass
class AssessQuery:
    """Payload of an ``assess_quality`` request."""

    assessor: Any
    inference: InferenceAlgorithm
    observed: np.ndarray
    cycle: int
    requirement: Any


@dataclass
class CompleteQuery:
    """Payload of a ``complete_matrix`` request."""

    inference: InferenceAlgorithm
    matrix: np.ndarray


@dataclass
class LearnQuery:
    """Payload of a ``learn_batch`` request."""

    learner: Any  # repro.learner.core.Learner (anything with ingest/telemetry)
    batch: Any  # repro.learner.replay.TransitionBatch


class DecisionServer:
    """A shared decision server for concurrently running MCS campaigns.

    Parameters
    ----------
    config:
        Batching and caching knobs (:class:`ServeConfig`).
    clock:
        Logical clock used for wait-based flushing; injectable for tests.
    cache:
        Completion cache; a fresh LRU cache of ``config.cache_capacity``
        entries by default.  Pass a shared cache to let several servers
        (or a server and offline code) share completions.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        clock: Optional[TickClock] = None,
        cache: Optional[CompletionCache] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.clock = clock or TickClock()
        self.cache = cache or CompletionCache(self.config.cache_capacity)
        self.batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_wait_ticks=self.config.max_wait_ticks,
            clock=self.clock,
            max_inflight_per_tenant=self.config.max_inflight_per_campaign,
        )
        self.stats = ServerStats(cache=self.cache)
        # Optional request journal (duck-typed — see repro.serve.journal);
        # when attached, every request, flush decision, response, and learner
        # weight publication is recorded for differential replay.
        self._journal: Optional[Any] = None
        # Optional request tracer (duck-typed — see repro.obs.trace.Tracer);
        # when attached, every flush opens a batch span that parents the
        # spans of the requests it resolves.  Purely observational: traced
        # and untraced runs are bitwise identical.
        self._tracer: Optional[Any] = None
        # Bounded LRU of caching wrappers, keyed by inference instance id; a
        # long-lived server serving many short-lived campaigns must not pin
        # every inference instance it ever saw (completed work lives on in
        # self.cache regardless — wrappers are cheap to rebuild).
        self._cached_wrappers: "OrderedDict[int, CachingInference]" = OrderedDict()
        self._max_wrappers = 512
        # Stable display labels for learners seen on the learn endpoint, in
        # first-appearance order (telemetry keys in ServerStats.learners).
        self._learner_labels: Dict[int, str] = {}

    # -- journal wiring ----------------------------------------------------------

    def attach_journal(self, journal: Any) -> None:
        """Record every request/flush/response/publish into ``journal``.

        ``journal`` is duck-typed (anything with ``record_request`` /
        ``record_flush`` / ``record_response`` / ``watch_store``); see
        :class:`~repro.serve.journal.RequestJournal`.  Attach before the
        first request — a journal that missed traffic cannot replay it.
        """
        self._journal = journal

    def attach_tracer(self, tracer: Any) -> None:
        """Follow every request and batch through the pipeline with ``tracer``.

        ``tracer`` is duck-typed (anything with ``begin_request`` /
        ``begin_batch`` / ``end_batch``); see
        :class:`~repro.obs.trace.Tracer`.  Request spans are minted inside
        :meth:`MicroBatcher.submit` — the moment a request gets its sequence
        number — and closed by the batch span of the flush that answers
        them.  Requests already queued when the tracer attaches simply
        produce no spans.
        """
        self._tracer = tracer
        self.batcher.tracer = tracer

    # -- endpoints ---------------------------------------------------------------

    def select_cell(
        self,
        agent: Any,
        state: np.ndarray,
        mask: np.ndarray,
        *,
        greedy: bool = True,
        tenant: str = DEFAULT_TENANT,
    ) -> PendingResult:
        """Queue a policy query; resolves to the selected cell index.

        ``agent`` may be a :class:`~repro.core.drcell.DRCellAgent` or the
        underlying :class:`~repro.rl.dqn.DQNAgent`; wrappers are unwrapped so
        queries against the same shared agent always batch together.
        """
        if not hasattr(agent, "select_actions") and hasattr(agent, "agent"):
            agent = agent.agent  # DRCellAgent -> DQNAgent
        if not hasattr(agent, "select_actions"):
            raise TypeError(
                f"{type(agent).__name__} cannot serve policy queries; expected an "
                "agent with a batched select_actions method"
            )
        payload = SelectQuery(agent=agent, state=state, mask=mask, greedy=bool(greedy))
        return self._submit("select", payload, tenant=tenant)

    def assess_quality(
        self,
        assessor: Any,
        inference: InferenceAlgorithm,
        observed: np.ndarray,
        cycle: int,
        requirement: Any,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> PendingResult:
        """Queue a quality assessment; resolves to a bool verdict."""
        payload = AssessQuery(
            assessor=assessor,
            inference=inference,
            observed=observed,
            cycle=int(cycle),
            requirement=requirement,
        )
        return self._submit("assess", payload, tenant=tenant)

    def complete_matrix(
        self,
        inference: InferenceAlgorithm,
        matrix: np.ndarray,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> PendingResult:
        """Queue a matrix completion; resolves to the completed matrix."""
        return self._submit(
            "complete", CompleteQuery(inference=inference, matrix=matrix), tenant=tenant
        )

    def learn_batch(
        self, learner: Any, batch: Any, *, tenant: str = DEFAULT_TENANT
    ) -> PendingResult:
        """Queue a transition batch for the central learner; resolves to a receipt.

        ``learner`` is a :class:`~repro.learner.core.Learner` (anything with
        an ``ingest(batches) -> receipts`` method); ``batch`` a
        :class:`~repro.learner.replay.TransitionBatch`.  Batches for the
        same learner that land in one flush are ingested in submission
        order with a single ``ingest`` call, and the learner's combined
        staleness/ingestion telemetry is snapshotted into
        :attr:`ServerStats.learners` after every flush.
        """
        if not hasattr(learner, "ingest"):
            raise TypeError(
                f"{type(learner).__name__} cannot ingest transition batches; "
                "expected a learner with an ingest method"
            )
        return self._submit("learn", LearnQuery(learner=learner, batch=batch), tenant=tenant)

    def _submit(self, kind: str, payload: Any, *, tenant: str = DEFAULT_TENANT) -> PendingResult:
        self.stats.record_request(kind, tenant=tenant)
        request = self.batcher.submit(kind, payload, tenant=tenant)
        if self._journal is not None:
            self._journal.record_request(request)
        if self.batcher.is_full(kind):
            self._flush_one_batch(kind, trigger="full")
        return request.future

    # -- pumping -----------------------------------------------------------------

    def tick(self, ticks: int = 1) -> int:
        """Advance the logical clock and flush every endpoint that became due.

        Returns the number of requests resolved.
        """
        self.clock.advance(ticks)
        self.stats.ticks = self.clock.now()
        resolved = 0
        for kind in KINDS:
            while self.batcher.is_due(kind):
                resolved += self._flush_one_batch(kind, trigger="due")
        return resolved

    def flush(self, kind: Optional[str] = None) -> int:
        """Flush every pending request (of one kind, or all kinds), ignoring timers."""
        kinds = (kind,) if kind is not None else KINDS
        resolved = 0
        for current in kinds:
            while self.batcher.pending(current):
                resolved += self._flush_one_batch(current, trigger="forced")
        return resolved

    def run_pending(self) -> int:
        """Resolve everything currently queued, advancing the clock once.

        This is the scheduler's pump: one logical tick (so wait-based
        telemetry stays meaningful), then a full priority-ordered flush.
        """
        if not self.batcher.pending():
            return 0
        resolved = self.tick()
        resolved += self.flush()
        return resolved

    @property
    def pending(self) -> int:
        """Requests currently queued across all endpoints."""
        return self.batcher.pending()

    # -- batch handlers ----------------------------------------------------------

    def _flush_one_batch(self, kind: str, *, trigger: str = "forced") -> int:
        waiting = self.batcher.pending_tenants(kind)
        requests = self.batcher.drain(kind)
        if not requests:
            return 0
        batch_tenants = {request.tenant for request in requests}
        self.stats.record_fairness(
            (request.tenant for request in requests),
            (tenant for tenant in waiting if tenant not in batch_tenants),
        )
        if self._journal is not None:
            self._journal.record_flush(
                kind,
                tick=self.clock.now(),
                trigger=trigger,
                sequences=[request.sequence for request in requests],
            )
        handler = {
            "select": self._handle_select,
            "assess": self._handle_assess,
            "complete": self._handle_complete,
            "learn": self._handle_learn,
        }[kind]
        batch_span = None
        hits_before = misses_before = 0
        if self._tracer is not None:
            batch_span = self._tracer.begin_batch(
                kind, tick=self.clock.now(), trigger=trigger, requests=requests
            )
            hits_before, misses_before = self.cache.hits, self.cache.misses
        with self.stats.record_batch(kind, len(requests)):
            handler(requests)
        if batch_span is not None:
            self._tracer.end_batch(
                batch_span,
                cache_hits=self.cache.hits - hits_before,
                cache_misses=self.cache.misses - misses_before,
            )
        if self._journal is not None:
            for request in requests:
                self._journal.record_response(request)
        return len(requests)

    def _handle_select(self, requests: List[ServeRequest]) -> None:
        """Answer policy queries, one stacked forward per distinct agent."""
        groups: Dict[int, List[ServeRequest]] = {}
        for request in requests:
            groups.setdefault(id(request.payload.agent), []).append(request)
        for group in groups.values():
            agent = group[0].payload.agent
            try:
                actions = agent.select_actions(
                    [request.payload.state for request in group],
                    masks=[request.payload.mask for request in group],
                    greedy=[request.payload.greedy for request in group],
                )
            except Exception as error:  # propagate to every waiting client
                self._fail_group(group, error)
                continue
            for request, action in zip(group, actions):
                request.future.set_result(int(action))

    def _handle_assess(self, requests: List[ServeRequest]) -> None:
        """Answer assessments, one ``assess_many`` per (assessor, inference) class."""
        from repro.mcs.campaign import (  # local import: avoids a package cycle
            _equivalent_assessor,
            _equivalent_inference,
            _group_by_equivalence,
        )

        groups = _group_by_equivalence(
            requests,
            lambda a, b: _equivalent_assessor(a.payload.assessor, b.payload.assessor)
            and _equivalent_inference(a.payload.inference, b.payload.inference),
        )
        for group in groups:
            representative = group[0].payload
            try:
                # Per-request RNG partitioning: each slot's subsampling draws
                # come from its *own* assessor's stream even though one
                # representative runs the pooled pass, so a campaign's
                # assessment randomness is independent of who shares its
                # batch.  Assessors without a public rng fall back to the
                # representative's stream (pre-partitioning behaviour).
                verdicts = representative.assessor.assess_many(
                    [request.payload.observed for request in group],
                    [request.payload.cycle for request in group],
                    [request.payload.requirement for request in group],
                    self._cached(representative.inference),
                    rngs=[
                        getattr(request.payload.assessor, "rng", None)
                        for request in group
                    ],
                )
            except Exception as error:
                self._fail_group(group, error)
                continue
            for request, verdict in zip(group, verdicts):
                request.future.set_result(bool(verdict))

    def _handle_complete(self, requests: List[ServeRequest]) -> None:
        """Answer completions, one ``complete_batch`` per inference class."""
        from repro.mcs.campaign import (  # local import: avoids a package cycle
            _equivalent_inference,
            _group_by_equivalence,
        )

        groups = _group_by_equivalence(
            requests,
            lambda a, b: _equivalent_inference(a.payload.inference, b.payload.inference),
        )
        for group in groups:
            inference = self._cached(group[0].payload.inference)
            try:
                completed = inference.complete_batch(
                    [request.payload.matrix for request in group]
                )
            except Exception as error:
                self._fail_group(group, error)
                continue
            for request, matrix in zip(group, completed):
                request.future.set_result(matrix)

    def _handle_learn(self, requests: List[ServeRequest]) -> None:
        """Feed the central learner(s), one ``ingest`` call per learner.

        Batches for the same learner are ingested in submission order —
        exactly the order sequential direct execution would have observed
        the cycles in — and every request resolves to its per-batch receipt.
        After each group the learner's telemetry snapshot (weight staleness,
        per-campaign replay accounting, learn progress) is published into
        :attr:`ServerStats.learners`.
        """
        groups: Dict[int, List[ServeRequest]] = {}
        for request in requests:
            groups.setdefault(id(request.payload.learner), []).append(request)
        for group in groups.values():
            learner = group[0].payload.learner
            if self._journal is not None and hasattr(learner, "store"):
                # Idempotent: publish events from this very ingest (and all
                # later ones) land in the journal under the learner's stable
                # telemetry label.
                self._journal.watch_store(self._learner_label(learner), learner.store)
            try:
                receipts = learner.ingest(
                    [request.payload.batch for request in group]
                )
            except Exception as error:
                self._fail_group(group, error)
                continue
            for request, receipt in zip(group, receipts):
                request.future.set_result(receipt)
            self.stats.record_learner(
                self._learner_label(learner), learner.telemetry()
            )

    def _learner_label(self, learner: Any) -> str:
        """Stable telemetry key for a learner instance (first-seen order)."""
        label = self._learner_labels.get(id(learner))
        if label is None:
            label = f"learner-{len(self._learner_labels)}"
            self._learner_labels[id(learner)] = label
        return label

    @staticmethod
    def _fail_group(group: Sequence[ServeRequest], error: BaseException) -> None:
        for request in group:
            if not request.future.done:
                request.future.set_exception(error)

    def _cached(self, inference: InferenceAlgorithm) -> InferenceAlgorithm:
        """The caching wrapper for ``inference`` (one per live instance, shared cache)."""
        if isinstance(inference, CachingInference):
            return inference
        wrapper = self._cached_wrappers.get(id(inference))
        # The identity check guards against id() reuse after the original
        # instance was garbage-collected.
        if wrapper is None or wrapper.inner is not inference:
            wrapper = CachingInference(inference, self.cache)
            self._cached_wrappers[id(inference)] = wrapper
        self._cached_wrappers.move_to_end(id(inference))
        while len(self._cached_wrappers) > self._max_wrappers:
            self._cached_wrappers.popitem(last=False)
        return wrapper

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DecisionServer(pending={self.pending}, "
            f"tick={self.clock.now()}, cache={self.cache!r})"
        )


#: Yield this from a driven client to park at a cycle boundary until every
#: other client reaches one (or finishes).  Campaign runners emit it after
#: each completed cycle, which keeps co-scheduled fleets cycle-aligned: no
#: batch ever mixes requests from different campaign cycles, and the global
#: boundary after cycle ``c`` is a well-defined quiescent point — the state
#: a :class:`~repro.serve.checkpoint.ServerCheckpoint` captures and a
#: resumed drive reproduces exactly.
CYCLE_BARRIER = "cycle-barrier"


def drive(
    server: DecisionServer,
    clients: Iterable[Iterator],
    *,
    on_barrier: Optional[Callable[[], None]] = None,
) -> None:
    """Cooperatively drive generator clients against one server to completion.

    Each client is a generator that submits requests to ``server`` and
    ``yield``\\ s whenever it needs pending futures resolved before it can
    continue (see :class:`~repro.mcs.served.ServedCampaignRunner.launch`).
    The scheduler round-robins: every live client is advanced once (letting
    it submit its next phase of requests), then the server resolves
    everything pending, then the cycle repeats.  Requests submitted by
    different clients in the same round therefore share batches — campaigns
    never wait on wall-clock time, and the schedule (hence every batched
    result) is deterministic.

    A client that yields :data:`CYCLE_BARRIER` is parked until every other
    live client has also parked (or finished); then all parked clients are
    released into the same scheduling round.  Campaigns of different
    cadence therefore advance cycle-aligned — the alignment that makes
    mid-flight checkpoints resumable bitwise.

    ``on_barrier`` (optional) is called, with no arguments, at every barrier
    release — the drive's quiescent points, where nothing is in flight.
    Observability snapshots hook in here; the callback must not submit
    requests or otherwise perturb the schedule.
    """
    roster: List[Iterator] = list(clients)
    # Launch order, not parking order, defines the round-robin order after a
    # barrier release — a drive resumed from a checkpoint rebuilds its
    # clients in launch order, so the uninterrupted schedule must use it too.
    rank = {id(client): index for index, client in enumerate(roster)}
    runnable: List[Iterator] = roster
    parked: List[Iterator] = []
    while runnable or parked:
        survivors: List[Iterator] = []
        for client in runnable:
            try:
                signal = next(client)
            except StopIteration:
                continue
            if signal == CYCLE_BARRIER:
                parked.append(client)
            else:
                survivors.append(client)
        runnable = survivors
        if not runnable and parked:
            parked.sort(key=lambda client: rank[id(client)])
            runnable, parked = parked, []
            if on_barrier is not None:
                on_barrier()
        server.run_pending()
