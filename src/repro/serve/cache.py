"""Completion caching: skip ALS when the same partial matrix comes back.

Matrix completion is deterministic — :class:`~repro.inference.compressive.
CompressiveSensingInference` freezes its initialisation seed, and the batched
solver's per-slot results are independent of which other matrices share the
stack — so a (inference configuration, partial matrix) pair always maps to
the same completed matrix.  Campaigns hit the same pair repeatedly: the LOO
assessment of a cycle re-completes held-out variants of one window, and
multi-policy comparisons (or replicated A/B campaigns) assess *identical*
partial matrices from different campaign slots.  :class:`CompletionCache`
memoises those completions under an LRU policy and
:class:`CachingInference` wraps any :class:`~repro.inference.base.
InferenceAlgorithm` so every ``complete``/``complete_batch`` call consults
the cache first — including a within-batch deduplication pass, so a pooled
batch carrying the same matrix K times solves it once.

Keys are content fingerprints, not object identities: the matrix fingerprint
hashes the shape and the raw float64 bytes (the NaN mask is part of the
bytes, so equal masks with different observed values cannot collide), and
the inference fingerprint hashes the algorithm's type and configuration
attributes (RNG objects excluded, arrays hashed by content).  Two
differently-seeded but equivalently-configured ALS instances still fingerprint
differently (``_init_seed`` is an attribute), because their completions
*are* different — cache correctness never depends on the pooling layer's
looser equivalence notion.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.inference.backends import SolverStats
from repro.inference.base import InferenceAlgorithm
from repro.utils.validation import check_positive_int

#: Cache key: (inference fingerprint, matrix fingerprint).
CacheKey = Tuple[str, str]


def matrix_fingerprint(matrix: np.ndarray) -> str:
    """Content fingerprint of a (possibly partial) float matrix.

    The digest covers the shape and the raw float64 bytes, so two matrices
    collide only when they are bitwise identical — same NaN pattern *and*
    same observed values.
    """
    matrix = np.ascontiguousarray(np.asarray(matrix, dtype=float))
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(matrix.shape).encode("ascii"))
    digest.update(matrix.tobytes())
    return digest.hexdigest()


def inference_fingerprint(inference: InferenceAlgorithm) -> str:
    """Configuration fingerprint of an inference algorithm instance.

    Hashes the type and every instance attribute except RNG objects and
    :class:`~repro.inference.backends.SolverStats` telemetry (neither changes
    what the algorithm computes); array attributes (e.g. KNN coordinates)
    are hashed by content.  Instances with equal configuration therefore
    share completions, while any attribute difference — including a frozen
    initialisation seed or the execution *backend* (numerically different
    backends must not cross-serve completions) — keeps them apart.
    """
    parts = [f"{type(inference).__module__}.{type(inference).__qualname__}"]
    for key in sorted(vars(inference)):
        value = vars(inference)[key]
        if isinstance(value, (np.random.Generator, SolverStats)):
            continue
        if isinstance(value, np.ndarray):
            parts.append(f"{key}={matrix_fingerprint(value)}")
        else:
            parts.append(f"{key}={value!r}")
    return "|".join(parts)


class CompletionCache:
    """An LRU cache of completed matrices keyed by content fingerprints.

    Parameters
    ----------
    capacity:
        Maximum number of completed matrices kept; the least recently *used*
        entry is evicted first.  Every ``get`` hit refreshes recency.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        self._entries: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: CacheKey) -> Optional[np.ndarray]:
        """The cached completion for ``key`` (a defensive copy), or ``None``.

        Updates the hit/miss counters and the LRU recency.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.copy()

    def put(self, key: CacheKey, value: np.ndarray) -> None:
        """Store a completion (a defensive copy), evicting LRU entries if full."""
        self._entries[key] = np.asarray(value, dtype=float).copy()
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[CacheKey]:
        """Current keys in LRU order (oldest first); mainly for tests."""
        return list(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (NaN before any lookup)."""
        total = self.hits + self.misses
        if total == 0:
            return float("nan")
        return self.hits / total

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    # -- round-tripping ----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable cache state: entries in LRU order plus the counters.

        Keys are (fingerprint, fingerprint) string tuples and values float64
        matrices, so the whole cache round-trips through JSON exactly (the
        arrays are byte-encoded by :mod:`repro.utils.statedict`); restoring
        preserves the LRU recency order, hence future eviction decisions.
        """
        from repro.utils.statedict import encode_array

        return {
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "entries": [
                [list(key), encode_array(value)]
                for key, value in self._entries.items()
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output, replacing current contents."""
        from repro.utils.statedict import decode_array

        if int(state["capacity"]) != self.capacity:  # type: ignore[arg-type]
            raise ValueError(
                f"checkpoint cache capacity {state['capacity']} does not match "
                f"this cache's capacity {self.capacity}"
            )
        self._entries = OrderedDict(
            ((str(key[0]), str(key[1])), decode_array(value))
            for key, value in state["entries"]  # type: ignore[union-attr]
        )
        self.hits = int(state["hits"])  # type: ignore[arg-type]
        self.misses = int(state["misses"])  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompletionCache({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


class CachingInference(InferenceAlgorithm):
    """Wrap an inference algorithm so completions go through a :class:`CompletionCache`.

    The wrapper is transparent to callers — it satisfies the
    :class:`~repro.inference.base.InferenceAlgorithm` interface, proxies
    ``supports_batch_completion`` so batching probes keep working, and
    returns exactly what the wrapped algorithm would return (completions are
    deterministic and batch-composition independent, so a cache hit is
    bitwise identical to a recomputation).

    ``complete_batch`` additionally deduplicates *within* the batch: a pooled
    call carrying the same partial matrix K times (replicated campaigns,
    repeated LOO windows) solves it once and fans the result out, counting
    the K−1 skipped solves as cache hits.
    """

    def __init__(self, inner: InferenceAlgorithm, cache: CompletionCache) -> None:
        if not isinstance(inner, InferenceAlgorithm):
            raise TypeError(
                f"expected an InferenceAlgorithm, got {type(inner).__name__}"
            )
        self.inner = inner
        self.cache = cache
        self.name = getattr(inner, "name", "inference")
        # The configuration fingerprint is frozen at wrap time; the built-in
        # algorithms never mutate their configuration after construction.
        self._inner_fingerprint = inference_fingerprint(inner)

    def _key(self, matrix: np.ndarray) -> CacheKey:
        return (self._inner_fingerprint, matrix_fingerprint(matrix))

    @property
    def supports_batch_completion(self) -> bool:
        return self.inner.supports_batch_completion

    def complete(self, matrix: np.ndarray) -> np.ndarray:
        key = self._key(matrix)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        completed = self.inner.complete(matrix)
        self.cache.put(key, completed)
        return completed

    def complete_batch(self, matrices: Sequence[np.ndarray]) -> List[np.ndarray]:
        results: List[Optional[np.ndarray]] = [None] * len(matrices)
        miss_keys: List[CacheKey] = []
        miss_indices: List[int] = []
        first_seen: Dict[CacheKey, int] = {}
        duplicates: List[Tuple[int, int]] = []  # (index, position of first miss)
        for index, matrix in enumerate(matrices):
            key = self._key(matrix)
            if key in first_seen:
                # Same matrix earlier in this very batch: solve once, fan out.
                duplicates.append((index, first_seen[key]))
                self.cache.hits += 1
                continue
            cached = self.cache.get(key)
            if cached is not None:
                results[index] = cached
                continue
            first_seen[key] = len(miss_indices)
            miss_indices.append(index)
            miss_keys.append(key)
        if miss_indices:
            completed = self.inner.complete_batch([matrices[i] for i in miss_indices])
            for key, index, result in zip(miss_keys, miss_indices, completed):
                results[index] = result
                self.cache.put(key, result)
        for index, miss_position in duplicates:
            results[index] = results[miss_indices[miss_position]].copy()
        return results  # type: ignore[return-value]

    def _complete(self, matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
        # Unreachable through the public interface (``complete`` is overridden),
        # but the abstract contract requires it; delegate for completeness.
        return self.inner._complete(matrix, mask)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachingInference({self.inner!r})"
