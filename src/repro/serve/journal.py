"""The request journal: record a serving session, replay it differentially.

:class:`RequestJournal` is the serving layer's flight recorder.  Attached to
a :class:`~repro.serve.server.DecisionServer` (via
:meth:`~repro.serve.server.DecisionServer.attach_journal`), it records every
event that determines — or evidences — the session's behaviour, as plain
JSON-able dicts:

``header``
    The scenario spec, and the resolved serving knobs (batch size, wait
    ticks, cache capacity, per-campaign inflight cap, replicas, cycle
    budget).  Everything needed to rebuild the session from scratch.
``request``
    One submitted request: endpoint kind, tenant (campaign id), enqueue
    tick, global sequence number, and a *fingerprint* of the payload
    (stable entity labels plus content hashes of the arrays — never the
    arrays themselves, so journals stay small).
``flush``
    One assembled batch: the flush trigger (``full`` / ``due`` /
    ``forced``), the tick it fired at, and the sequence numbers it served,
    in batch order.  This pins the micro-batcher's entire scheduling
    behaviour.
``response``
    One resolved request: the canonicalized result (arrays become content
    fingerprints) or the ``repr`` of the raised error.
``publish``
    One learner weight publication, recorded through
    :meth:`~repro.learner.weights.WeightStore.subscribe`: version, tick,
    step counters, and a fingerprint of the published weights.
``stats``
    The final :meth:`~repro.serve.stats.ServerStats.deterministic_dict`
    snapshot, written by :meth:`RequestJournal.finalize`.

Because every component in the library is deterministically seeded and the
server's scheduling is driven by a logical clock, the journal is a pure
function of the scenario spec and the serving knobs.  :func:`replay_journal`
exploits that: it rebuilds the session from the header, re-trains, re-serves
with a fresh journal attached, and diffs the two event streams element-wise
(:func:`diff_journals`) — any divergence in request schedule, batch
composition, results, published weights, or final telemetry is reported
with its event index.  A clean :class:`ReplayReport` is a *bitwise*
end-to-end reproducibility certificate for the whole serving stack.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serve.cache import matrix_fingerprint
from repro.serve.server import (
    AssessQuery,
    CompleteQuery,
    LearnQuery,
    SelectQuery,
)

#: Journal format version; bumped on breaking event-schema changes.
JOURNAL_VERSION = 1


def weights_fingerprint(weights: Sequence[Dict[str, np.ndarray]]) -> str:
    """A content hash of layer-ordered network weights.

    ``weights`` is the library's standard exchange format (see
    :meth:`~repro.nn.network.Network.get_weights`): a list of per-layer
    ``name -> array`` dicts.  The digest covers layer order, parameter
    names, and exact array bytes (via :func:`~repro.serve.cache.
    matrix_fingerprint`), so two fingerprints match iff the weights are
    bitwise identical.
    """
    digest = hashlib.blake2b(digest_size=16)
    for index, layer in enumerate(weights):
        digest.update(str(index).encode())
        for name in sorted(layer):
            digest.update(name.encode())
            digest.update(matrix_fingerprint(np.asarray(layer[name])).encode())
    return digest.hexdigest()


class RequestJournal:
    """Record a serving session's events for differential replay.

    Use a *fresh* journal per recorded session, attach it before the first
    request, and call :meth:`finalize` after the drive completes::

        journal = RequestJournal()
        report, stats = session.serve(journal=journal)   # attaches + finalizes
        journal.save("session.journal")

    Entity references (agents, assessors, inference instances, learners)
    are recorded as stable first-seen labels (``agent-0``, ``assessor-1``,
    …), not memory addresses, so a replayed run — with entirely different
    objects — produces the same labels as long as traffic arrives in the
    same order.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        # category -> id(obj) -> label; the object itself is pinned alongside
        # so CPython cannot recycle its id() for a different entity mid-run.
        self._entities: Dict[str, Dict[int, Tuple[str, Any]]] = {}
        self._watched_stores: Dict[int, Any] = {}

    # -- recording hooks (called by DecisionServer / Session) --------------------

    def record_header(self, *, scenario: Dict[str, Any], serve: Dict[str, Any]) -> None:
        """Record the session identity: scenario spec + resolved serve knobs."""
        if self.events:
            raise RuntimeError(
                "record_header must be the journal's first event; use a fresh "
                "RequestJournal per recorded session"
            )
        self.events.append(
            {
                "type": "header",
                "version": JOURNAL_VERSION,
                "scenario": scenario,
                "serve": dict(serve),
            }
        )

    def record_request(self, request: Any) -> None:
        """Record one submitted :class:`~repro.serve.batcher.ServeRequest`."""
        self.events.append(
            {
                "type": "request",
                "seq": request.sequence,
                "kind": request.kind,
                "tenant": request.tenant,
                "tick": request.enqueued_at,
                "payload": self._payload_fingerprint(request.payload),
            }
        )

    def record_flush(
        self, kind: str, *, tick: int, trigger: str, sequences: Sequence[int]
    ) -> None:
        """Record one assembled batch: what fired it, and who got its slots."""
        self.events.append(
            {
                "type": "flush",
                "kind": kind,
                "tick": int(tick),
                "trigger": trigger,
                "seqs": [int(sequence) for sequence in sequences],
            }
        )

    def record_response(self, request: Any) -> None:
        """Record one resolved request's canonical result (or its error)."""
        event: Dict[str, Any] = {"type": "response", "seq": request.sequence}
        try:
            event["result"] = self._canonical(request.future.result())
        except BaseException as error:  # journalled, then re-raised client-side
            event["error"] = repr(error)
        self.events.append(event)

    def watch_store(self, label: str, store: Any) -> None:
        """Record every future weight publication of ``store`` under ``label``.

        Idempotent per store instance; the server calls this the first time
        a learner shows up on the ``learn_batch`` endpoint, so the journal
        captures every publication that batched ingestion triggers.
        """
        if id(store) in self._watched_stores:
            return
        self._watched_stores[id(store)] = store

        def on_publish(snapshot: Any) -> None:
            self.events.append(
                {
                    "type": "publish",
                    "store": label,
                    "version": int(snapshot.version),
                    "tick": int(snapshot.published_tick),
                    "total_steps": int(snapshot.total_steps),
                    "learn_steps": int(snapshot.learn_steps),
                    "weights": weights_fingerprint(snapshot.weights),
                }
            )

        store.subscribe(on_publish)

    def finalize(self, stats: Any) -> None:
        """Append the final deterministic telemetry snapshot."""
        self.events.append(
            {"type": "stats", "stats": stats.deterministic_dict()}
        )

    # -- persistence -------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the journal as JSON lines (one event per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Read :meth:`save` output back as a list of event dicts."""
        path = Path(path)
        events: List[Dict[str, Any]] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events

    # -- fingerprinting ----------------------------------------------------------

    def _label(self, category: str, obj: Any) -> str:
        """Stable first-seen label for an entity within this journal."""
        registry = self._entities.setdefault(category, {})
        entry = registry.get(id(obj))
        if entry is None or entry[1] is not obj:
            entry = (f"{category}-{len(registry)}", obj)
            registry[id(obj)] = entry
        return entry[0]

    def _payload_fingerprint(self, payload: Any) -> Dict[str, Any]:
        if isinstance(payload, SelectQuery):
            return {
                "agent": self._label("agent", payload.agent),
                "state": matrix_fingerprint(np.asarray(payload.state)),
                "mask": matrix_fingerprint(np.asarray(payload.mask)),
                "greedy": bool(payload.greedy),
            }
        if isinstance(payload, AssessQuery):
            return {
                "assessor": self._label("assessor", payload.assessor),
                "inference": self._label("inference", payload.inference),
                "observed": matrix_fingerprint(np.asarray(payload.observed)),
                "cycle": int(payload.cycle),
                "requirement": self._describe(payload.requirement),
            }
        if isinstance(payload, CompleteQuery):
            return {
                "inference": self._label("inference", payload.inference),
                "matrix": matrix_fingerprint(np.asarray(payload.matrix)),
            }
        if isinstance(payload, LearnQuery):
            batch = payload.batch
            return {
                "learner": self._label("learner", payload.learner),
                "campaign": str(batch.campaign),
                "transitions": len(batch),
                "states": matrix_fingerprint(np.asarray(batch.states)),
                "actions": matrix_fingerprint(np.asarray(batch.actions)),
                "rewards": matrix_fingerprint(np.asarray(batch.rewards)),
                "next_states": matrix_fingerprint(np.asarray(batch.next_states)),
                "dones": matrix_fingerprint(np.asarray(batch.dones)),
            }
        return {"repr": repr(payload)}

    @staticmethod
    def _describe(requirement: Any) -> str:
        describe = getattr(requirement, "describe", None)
        return describe() if callable(describe) else repr(requirement)

    def _canonical(self, value: Any) -> Any:
        """JSON-able canonical form: arrays become content fingerprints."""
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, np.ndarray):
            return {
                "array": matrix_fingerprint(value),
                "shape": [int(dim) for dim in value.shape],
                "dtype": str(value.dtype),
            }
        if isinstance(value, dict):
            return {str(key): self._canonical(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [self._canonical(item) for item in value]
        if hasattr(value, "__dataclass_fields__"):
            return {
                "type": type(value).__name__,
                "fields": {
                    name: self._canonical(getattr(value, name))
                    for name in value.__dataclass_fields__
                },
            }
        return repr(value)


# -- differential replay ----------------------------------------------------------


@dataclass
class ReplayReport:
    """Outcome of diffing a recorded journal against a replayed one."""

    recorded_events: int
    replayed_events: int
    divergences: List[str] = field(default_factory=list)

    #: Cap on reported divergence lines; the count still reflects the total
    #: compared length mismatch via ``recorded_events`` / ``replayed_events``.
    MAX_DIVERGENCES = 20

    @property
    def ok(self) -> bool:
        """True iff the replay reproduced the recording bitwise."""
        return not self.divergences and self.recorded_events == self.replayed_events

    def summary(self) -> str:
        if self.ok:
            return (
                f"replay ok: {self.replayed_events} events bitwise-identical"
            )
        lines = [
            f"replay DIVERGED: {self.recorded_events} recorded vs "
            f"{self.replayed_events} replayed events"
        ]
        lines.extend(self.divergences)
        return "\n".join(lines)


def _normalize(event: Dict[str, Any]) -> Dict[str, Any]:
    """Push an event through JSON so live and loaded events compare equal."""
    return json.loads(json.dumps(event, sort_keys=True))


def diff_journals(
    recorded: Sequence[Dict[str, Any]], replayed: Sequence[Dict[str, Any]]
) -> ReplayReport:
    """Element-wise diff of two journal event streams."""
    report = ReplayReport(
        recorded_events=len(recorded), replayed_events=len(replayed)
    )
    for index, (expected, actual) in enumerate(zip(recorded, replayed)):
        expected = _normalize(expected)
        actual = _normalize(actual)
        if expected != actual:
            if len(report.divergences) >= ReplayReport.MAX_DIVERGENCES:
                report.divergences.append("... further divergences suppressed")
                break
            report.divergences.append(
                f"event {index}: recorded {json.dumps(expected, sort_keys=True)[:200]}"
                f" != replayed {json.dumps(actual, sort_keys=True)[:200]}"
            )
    if len(recorded) != len(replayed) and not report.divergences:
        report.divergences.append(
            f"event streams differ in length: {len(recorded)} recorded vs "
            f"{len(replayed)} replayed"
        )
    return report


def replay_journal(
    source: Union[str, Path, Sequence[Dict[str, Any]]],
    *,
    journal: Optional[RequestJournal] = None,
) -> ReplayReport:
    """Re-execute a recorded serving session and diff it against the record.

    ``source`` is a journal file path (or an already-loaded event list).
    The header's scenario spec is rebuilt, the session re-trained (training
    is a pure function of the spec's seeds), and re-served with the
    recorded knobs and a fresh journal attached; the two event streams are
    then diffed element-wise.  Pass ``journal`` to keep the live journal
    for inspection.
    """
    if isinstance(source, (str, Path)):
        events = RequestJournal.load(source)
    else:
        events = list(source)
    if not events or events[0].get("type") != "header":
        raise ValueError("journal has no header event; cannot replay")
    header = events[0]
    if int(header.get("version", 0)) != JOURNAL_VERSION:
        raise ValueError(
            f"journal version {header.get('version')!r} is not supported "
            f"(expected {JOURNAL_VERSION})"
        )

    # Local imports: repro.api sits above the serving layer in the package
    # graph, so the replay driver pulls it in lazily.
    from repro.api.session import Session
    from repro.api.specs import ScenarioSpec

    spec = ScenarioSpec.from_dict(header["scenario"])
    session = Session(spec)
    session.train()
    live = journal if journal is not None else RequestJournal()
    serve = dict(header["serve"])
    session.serve(
        n_cycles=serve.get("n_cycles"),
        replicas=int(serve.get("replicas", 1)),
        max_batch=serve.get("max_batch"),
        max_wait_ticks=serve.get("max_wait_ticks"),
        cache_capacity=serve.get("cache_capacity"),
        max_inflight=serve.get("max_inflight_per_campaign"),
        journal=live,
    )
    return diff_journals(events, live.events)
