"""The DR-Cell state model (paper §4.1, item 1).

The state is the cell-selection history of the ``window`` most recent
cycles, a binary matrix ``S = [s_{-k+1}, …, s_{-1}, s_0]`` where ``s_0`` is
the (partial) selection vector of the current cycle.  The encoding itself is
shared with the training environment
(:class:`repro.mcs.environment.StateEncoder`); this module adds the
campaign-side view — building the state from the observation matrix a
:class:`~repro.mcs.policies.CellSelectionPolicy` receives — and the
state-space-size computation that motivates the move from the Q-table to a
deep Q-network.
"""

from __future__ import annotations

import numpy as np

from repro.mcs.environment import StateEncoder
from repro.utils.validation import check_positive_int


def state_space_size(n_cells: int, window: int) -> int:
    """Number of distinct states, ``2^(window · n_cells)`` (paper §4.1).

    For 50 cells and a window of two cycles this is already 2^100 — the
    number that makes tabular Q-learning intractable and motivates the DRQN.
    """
    check_positive_int(n_cells, "n_cells")
    check_positive_int(window, "window")
    return 2 ** (window * n_cells)


class DRCellStateModel:
    """Builds DR-Cell states from either environment or campaign data.

    Parameters
    ----------
    n_cells:
        Number of cells in the sensing area.
    window:
        Number of recent cycles k kept in the state.
    """

    def __init__(self, n_cells: int, window: int) -> None:
        self.encoder = StateEncoder(n_cells, window)

    @property
    def n_cells(self) -> int:
        return self.encoder.n_cells

    @property
    def window(self) -> int:
        return self.encoder.window

    @property
    def shape(self) -> tuple[int, int]:
        """Shape ``(window, n_cells)`` of the encoded state."""
        return self.encoder.shape

    @property
    def n_states(self) -> int:
        """Size of the discrete state space."""
        return state_space_size(self.n_cells, self.window)

    def from_selection_history(
        self, selection_matrix: np.ndarray, cycle: int, current: np.ndarray
    ) -> np.ndarray:
        """Encode from an explicit 0/1 selection matrix plus the current vector."""
        return self.encoder.encode(selection_matrix, cycle, current)

    def from_observations(
        self, observed_matrix: np.ndarray, cycle: int, sensed_mask: np.ndarray
    ) -> np.ndarray:
        """Encode from a campaign's observation matrix (NaN = unobserved).

        Past cycles' selection vectors are recovered as "was a value
        observed", which is exactly the cell-selection matrix of Definition 4;
        the current cycle's vector is the ``sensed_mask`` the campaign passes
        to the policy.
        """
        observed_matrix = np.asarray(observed_matrix, dtype=float)
        if observed_matrix.shape[0] != self.n_cells:
            raise ValueError(
                f"observation matrix has {observed_matrix.shape[0]} cells, expected {self.n_cells}"
            )
        if not 0 <= cycle < observed_matrix.shape[1] + 1:
            raise IndexError(f"cycle {cycle} outside the observation matrix")
        past_columns = min(cycle, observed_matrix.shape[1])
        selection_matrix = np.zeros((self.n_cells, max(past_columns, 1)), dtype=int)
        if past_columns > 0:
            selection_matrix = (~np.isnan(observed_matrix[:, :past_columns])).astype(int)
        current = np.asarray(sensed_mask, dtype=float)
        return self.encoder.encode(selection_matrix, cycle, current)
