"""Transfer learning between correlated sensing tasks (paper §4.4).

When two tasks in the same area are correlated (temperature and humidity),
the Q-function learned for the source task is a good initialisation for the
target task: copy the source DRQN's weights into a fresh target agent and
fine-tune it on the target task's small amount of training data.  The paper's
Figure-7 experiment compares this TRANSFER strategy against NO-TRANSFER
(use the source Q-function directly), SHORT-TRAIN (train from scratch on the
small target data), and RANDOM selection.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import DRCellConfig
from repro.core.drcell import DRCellAgent
from repro.core.trainer import DRCellTrainer, TrainingReport
from repro.datasets.base import SensingDataset
from repro.quality.epsilon_p import QualityRequirement
from repro.utils.validation import check_positive_int


def initialize_from_source(source: DRCellAgent, config: Optional[DRCellConfig] = None) -> DRCellAgent:
    """Build a target-task agent initialised with the source agent's weights.

    The two tasks must share the sensing area (same number of cells) and the
    same state window, because the Q-network's input and output layouts are
    determined by them.
    """
    config = config or source.config
    if config.window != source.window:
        raise ValueError(
            f"target window {config.window} differs from source window {source.window}; "
            "transfer requires identical state layouts"
        )
    if config.recurrent != source.config.recurrent:
        raise ValueError("source and target must use the same network architecture")
    if (
        config.lstm_hidden != source.config.lstm_hidden
        or tuple(config.dense_hidden) != tuple(source.config.dense_hidden)
    ):
        raise ValueError("source and target must use identical network sizes for weight transfer")
    target = DRCellAgent.build(source.n_cells, config)
    target.set_weights(source.get_weights())
    target.training_info["transferred_from"] = source.training_info.get("dataset", "source-task")
    return target


def transfer_train(
    source: DRCellAgent,
    target_dataset: SensingDataset,
    target_requirement: QualityRequirement,
    *,
    config: Optional[DRCellConfig] = None,
    fine_tune_episodes: int = 3,
    trainer: Optional[DRCellTrainer] = None,
) -> Tuple[DRCellAgent, TrainingReport]:
    """The TRANSFER strategy: initialise from the source task, fine-tune on the target.

    Parameters
    ----------
    source:
        Agent trained on the source task (adequate training data).
    target_dataset:
        The target task's *small* training dataset (the paper uses 10 cycles).
    target_requirement:
        The target task's (ε, p)-quality requirement.
    config:
        Target-task configuration; defaults to the source agent's
        configuration.
    fine_tune_episodes:
        Number of fine-tuning episodes over the small target dataset.
    trainer:
        Optionally reuse an existing trainer (e.g. to share an inference
        algorithm); one is built from ``config`` otherwise.

    Returns
    -------
    tuple
        ``(fine_tuned_agent, fine_tuning_report)``.
    """
    check_positive_int(fine_tune_episodes, "fine_tune_episodes")
    if target_dataset.n_cells != source.n_cells:
        raise ValueError(
            f"target dataset has {target_dataset.n_cells} cells but the source agent "
            f"was trained on {source.n_cells}; transfer requires the same sensing area"
        )
    config = config or source.config
    target_agent = initialize_from_source(source, config)
    trainer = trainer or DRCellTrainer(config)
    agent, report = trainer.train(
        target_dataset,
        target_requirement,
        agent=target_agent,
        episodes=fine_tune_episodes,
    )
    agent.training_info["strategy"] = "TRANSFER"
    return agent, report
