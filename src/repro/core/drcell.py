"""The DR-Cell agent and its campaign-facing policy.

:class:`DRCellAgent` bundles a trained Q-network agent with the state model
it was trained under; :class:`DRCellPolicy` adapts it to the
:class:`~repro.mcs.policies.CellSelectionPolicy` interface so that the same
campaign runner evaluates DR-Cell and the baselines identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.api.registry import POLICIES
from repro.core.action import ActionSpace
from repro.core.config import DRCellConfig
from repro.core.state import DRCellStateModel
from repro.nn.serialization import load_weights, save_weights
from repro.rl.dqn import DQNAgent
from repro.rl.drqn import build_dqn_agent, build_drqn_agent
from repro.rl.schedules import LinearDecaySchedule
from repro.mcs.policies import CellSelectionPolicy
from repro.utils.seeding import derive_rng


@dataclass
class DRCellAgent:
    """A (possibly trained) DR-Cell agent.

    Attributes
    ----------
    agent:
        The underlying deep Q-learning agent (recurrent or feed-forward).
    state_model:
        The state encoder the agent was trained with.
    config:
        The configuration used to build/train the agent.
    training_info:
        Free-form training metadata (episodes run, final exploration rate,
        source task for transferred agents, wall-clock time).
    """

    agent: DQNAgent
    state_model: DRCellStateModel
    config: DRCellConfig
    training_info: Dict[str, object] = field(default_factory=dict)

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, n_cells: int, config: Optional[DRCellConfig] = None) -> "DRCellAgent":
        """Build an untrained agent for an area with ``n_cells`` cells.

        ``config.fused_learning`` is pushed down into the inner
        :class:`~repro.rl.dqn.DQNConfig` so the agent's vectorized training
        loop picks the fused global-step schedule without every caller having
        to thread the flag through.
        """
        config = config or DRCellConfig()
        dqn_config = config.dqn
        if config.fused_learning and not dqn_config.fused_learning:
            dqn_config = replace(dqn_config, fused_learning=True)
        exploration = LinearDecaySchedule(
            config.exploration_start,
            config.exploration_end,
            config.exploration_decay_steps,
        )
        if config.recurrent:
            agent = build_drqn_agent(
                n_cells,
                config.window,
                lstm_hidden=config.lstm_hidden,
                dense_hidden=config.dense_hidden,
                learning_rate=config.learning_rate,
                config=dqn_config,
                exploration=exploration,
                seed=derive_rng(config.seed, 0),
            )
        else:
            agent = build_dqn_agent(
                n_cells,
                config.window,
                hidden_dims=config.dense_hidden or (64, 64),
                learning_rate=config.learning_rate,
                config=dqn_config,
                exploration=exploration,
                seed=derive_rng(config.seed, 0),
            )
        return cls(
            agent=agent,
            state_model=DRCellStateModel(n_cells, config.window),
            config=config,
        )

    # -- basic properties -------------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Number of cells of the sensing area the agent was built for."""
        return self.state_model.n_cells

    @property
    def window(self) -> int:
        """State window length k."""
        return self.state_model.window

    @property
    def action_space(self) -> ActionSpace:
        """The cell-selection action space."""
        return ActionSpace(self.n_cells)

    # -- acting ------------------------------------------------------------------

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-values of every cell under ``state``."""
        return self.agent.q_values(state)

    def select_cell(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
        *,
        greedy: bool = True,
    ) -> int:
        """Select the next cell from a campaign's observation matrix."""
        state = self.state_model.from_observations(observed_matrix, cycle, sensed_mask)
        mask = self.action_space.mask_from_sensed(np.asarray(sensed_mask, dtype=bool))
        return self.agent.select_action(state, mask=mask, greedy=greedy)

    def policy(self, *, greedy: bool = True) -> "DRCellPolicy":
        """A campaign policy view of this agent."""
        return DRCellPolicy(self, greedy=greedy)

    # -- weights -------------------------------------------------------------------

    def get_weights(self):
        """Online Q-network weights (layer-ordered list of name→array dicts)."""
        return self.agent.get_weights()

    def set_weights(self, weights) -> None:
        """Load Q-network weights into both the online and target networks."""
        self.agent.set_weights(weights)

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the Q-network weights to an ``.npz`` file."""
        return save_weights(self.get_weights(), path)

    def load(self, path: Union[str, Path]) -> None:
        """Load Q-network weights previously written by :meth:`save`."""
        self.set_weights(load_weights(path))


@POLICIES.register("drcell", trains_agent=True)
class DRCellPolicy(CellSelectionPolicy):
    """Greedy (or δ-greedy) campaign policy backed by a :class:`DRCellAgent`."""

    name = "DR-Cell"

    def __init__(self, agent: DRCellAgent, *, greedy: bool = True, name: Optional[str] = None) -> None:
        self.agent = agent
        self.greedy = bool(greedy)
        if name is not None:
            self.name = name

    def select_cell(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
    ) -> int:
        return self.agent.select_cell(
            observed_matrix, cycle, sensed_mask, greedy=self.greedy
        )

    # -- round-tripping ----------------------------------------------------------

    def state_dict(self) -> dict:
        """The agent's action stream position.

        Even greedy selection consumes the agent generator (ties between
        equal Q-values break randomly), so mid-campaign resumption must
        restore the stream.  Network weights are not serialized here — the
        policy does not learn during a campaign, and the session restores
        weights through :meth:`DRCellAgent.save` / :meth:`DRCellAgent.load`.
        """
        from repro.utils.statedict import rng_state

        return {"rng": rng_state(self.agent.agent._rng)}

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.statedict import set_rng_state

        set_rng_state(self.agent.agent._rng, state["rng"])
