"""The DR-Cell reward model (paper §4.1, item 3).

Each data submission costs ``c``; when a submission makes the current cycle
satisfy the inference-quality requirement the agent additionally receives the
bonus ``R``, so the per-step reward is ``R·q − c`` with ``q ∈ {0, 1}``.
Minimising the number of submissions per cycle is then equivalent to
maximising the episode return.

The arithmetic is shared with the training environment
(:class:`repro.mcs.environment.RewardModel`); :class:`DRCellRewardModel`
wraps it with the paper's defaults and a couple of analysis helpers used by
the tests and the ablation benchmarks.
"""

from __future__ import annotations

from repro.mcs.environment import RewardModel
from repro.utils.validation import check_positive_int


class DRCellRewardModel(RewardModel):
    """Reward ``q·bonus − cost`` with the paper's default bonus (the cell count)."""

    @classmethod
    def for_area(cls, n_cells: int, *, cost: float = 1.0) -> "DRCellRewardModel":
        """The paper's choice: bonus equal to the total number of cells."""
        check_positive_int(n_cells, "n_cells")
        return cls(bonus=float(n_cells), cost=cost)

    def cycle_return(self, n_selected: int) -> float:
        """Undiscounted return of a cycle that needed ``n_selected`` submissions.

        Only the final submission earns the bonus, so the return is
        ``bonus − n_selected·cost``; fewer submissions ⇒ larger return, which
        is exactly the objective of the cell-selection problem.
        """
        check_positive_int(n_selected, "n_selected")
        return self.bonus - n_selected * self.cost

    def break_even_selections(self) -> float:
        """Number of submissions at which a cycle's return crosses zero."""
        if self.cost == 0:
            return float("inf")
        return self.bonus / self.cost
