"""The DR-Cell action model (paper §4.1, item 2).

The action set is always the full set of cells ``{0, …, m−1}``; cells
already selected in the current cycle are assigned zero probability, which
this module expresses as a boolean validity mask.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.utils.validation import check_positive_int


class ActionSpace:
    """The discrete action space of cell selection for an ``n_cells`` area."""

    def __init__(self, n_cells: int) -> None:
        self.n_cells = check_positive_int(n_cells, "n_cells")

    def __len__(self) -> int:
        return self.n_cells

    def __contains__(self, action: int) -> bool:
        return 0 <= int(action) < self.n_cells

    def all_actions(self) -> np.ndarray:
        """All cell indices, i.e. the complete action set A."""
        return np.arange(self.n_cells)

    def mask_from_sensed(self, sensed: Iterable[int] | np.ndarray) -> np.ndarray:
        """Validity mask given the cells already sensed in the current cycle.

        Accepts either a boolean per-cell vector or an iterable of cell
        indices; returns a boolean vector that is True for selectable cells.
        """
        sensed = np.asarray(list(sensed) if not isinstance(sensed, np.ndarray) else sensed)
        mask = np.ones(self.n_cells, dtype=bool)
        if sensed.size == 0:
            return mask
        if sensed.dtype == bool:
            if sensed.shape != (self.n_cells,):
                raise ValueError(
                    f"boolean sensed vector must have shape ({self.n_cells},), got {sensed.shape}"
                )
            return ~sensed
        indices = sensed.astype(int)
        if indices.min() < 0 or indices.max() >= self.n_cells:
            raise ValueError("sensed cell index out of range")
        mask[indices] = False
        return mask

    def validate(self, action: int, mask: np.ndarray) -> int:
        """Check that ``action`` is a currently valid cell and return it as int."""
        action = int(action)
        if action not in self:
            raise ValueError(f"action {action} out of range [0, {self.n_cells})")
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_cells,):
            raise ValueError(f"mask must have shape ({self.n_cells},), got {mask.shape}")
        if not mask[action]:
            raise ValueError(f"action {action} is not valid under the current mask")
        return action
