"""Online DR-Cell: learning during the campaign, without a preliminary study.

The paper's conclusion lists, as future work, "how to conduct the
reinforcement learning based cell selection in an online manner, so that we
do not need a preliminary study stage for collecting the training data any
more".  This module implements that extension.

:class:`OnlineDRCellPolicy` is a :class:`~repro.mcs.policies.CellSelectionPolicy`
that starts from an untrained (or transferred) agent and keeps learning
while the campaign runs:

* during a cycle it selects cells δ-greedily (exploration is needed because
  there is no pre-trained Q-function to exploit);
* when the campaign closes the cycle (the ``end_cycle`` hook), the policy
  replays the cycle's selections as transitions — every submission is
  charged its cost, and the final submission of the cycle additionally
  earns the quality bonus, exactly the paper's reward model — and feeds them
  to the underlying deep Q-learning agent.

The reward signal is therefore derived from the campaign's own stopping
decision (the leave-one-out Bayesian assessment), not from ground truth, so
no preliminary study is required.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.api.registry import POLICIES
from repro.core.config import DRCellConfig
from repro.core.drcell import DRCellAgent
from repro.mcs.environment import RewardModel
from repro.mcs.policies import CellSelectionPolicy
from repro.rl.environment import Transition
from repro.rl.schedules import LinearDecaySchedule
from repro.utils.logging import get_logger

logger = get_logger(__name__)


def build_cycle_transitions(
    agent: DRCellAgent,
    reward_model: RewardModel,
    states: List[np.ndarray],
    actions: List[int],
    cycle: int,
    observed_matrix: np.ndarray,
) -> List[Transition]:
    """Convert one finished cycle's (state, action) trajectory into transitions.

    The paper's reward attribution: every submission is charged its cost,
    and the final submission of the cycle — the one after which the
    campaign's quality assessment let the cycle stop — additionally earns
    the bonus.  Each non-final step transitions to the state with its cell
    added to the current selection; the final step transitions to the next
    cycle's empty-selection state.

    This is the single source of truth for the online reward shape, shared
    by :class:`OnlineDRCellPolicy` (which observes the transitions into its
    own agent) and :class:`~repro.learner.actor.ActorPolicy` (which ships
    them to the central learner as a tagged batch).  Construction consumes
    no randomness, so building transitions up front is RNG-order neutral.
    """
    n_steps = len(actions)
    transitions: List[Transition] = []
    sensed_after = np.zeros(agent.n_cells, dtype=bool)
    for index, (state, action) in enumerate(zip(states, actions)):
        sensed_after = sensed_after.copy()
        sensed_after[action] = True
        is_last = index == n_steps - 1
        # The campaign stopped collecting after the last submission, which
        # means the quality assessment passed (or coverage is complete):
        # that submission earns the bonus, the others only pay their cost.
        reward = reward_model.reward(is_last, cell=action)
        if is_last:
            # The next cycle starts with an empty current-selection row.
            next_state = agent.state_model.from_observations(
                observed_matrix, cycle + 1, np.zeros(agent.n_cells, dtype=bool)
            ) if cycle + 1 <= observed_matrix.shape[1] else state
        else:
            next_state = agent.state_model.from_observations(
                observed_matrix, cycle, sensed_after
            )
        transitions.append(Transition(state, action, reward, next_state, done=False))
    return transitions


@POLICIES.register("online", trains_agent=True)
class OnlineDRCellPolicy(CellSelectionPolicy):
    """DR-Cell that learns online, during the sensing campaign itself.

    Registered as ``"online"`` in the policy registry: a scenario slot with
    ``{"policy": {"name": "online"}}`` evaluates DR-Cell with online
    learning enabled.  Like ``"drcell"``, the registration declares
    ``trains_agent``, so the session injects the slot's (preliminary-study)
    trained agent — combining online adaptation with a warm start; pass
    ``"train": false`` and provide a fresh agent via
    :meth:`~repro.api.session.Session.set_agent` for the paper's
    from-scratch online future-work setting.

    Parameters
    ----------
    agent:
        The DR-Cell agent to train online.  Typically a freshly built agent
        (``DRCellAgent.build(n_cells, config)``); passing a transferred agent
        combines this extension with the paper's transfer learning.
    reward_model:
        Reward parameters; defaults to the paper's bonus = number of cells,
        cost = 1.  Per-cell costs are supported (future-work extension).
    exploration:
        δ-greedy schedule used while acting; defaults to a linear decay so
        the policy explores heavily at the start of the campaign and becomes
        greedy as the Q-function firms up.
    learn:
        Set to False to freeze the agent (useful for A/B comparisons where
        the same policy object must not keep adapting).
    """

    name = "DR-Cell (online)"

    def __init__(
        self,
        agent: DRCellAgent,
        *,
        reward_model: Optional[RewardModel] = None,
        exploration: Optional[LinearDecaySchedule] = None,
        learn: bool = True,
    ) -> None:
        self.agent = agent
        self.reward_model = reward_model or RewardModel(bonus=float(agent.n_cells))
        if exploration is not None:
            self.agent.agent.exploration = exploration
        self.learn = bool(learn)
        self._cycle_states: List[np.ndarray] = []
        self._cycle_actions: List[int] = []
        self._cycle_sensed: Optional[np.ndarray] = None
        self._cycles_seen = 0
        self._losses: List[float] = []

    # -- CellSelectionPolicy interface -----------------------------------------

    def begin_cycle(self, cycle: int, observed_matrix: np.ndarray) -> None:
        self._cycle_states = []
        self._cycle_actions = []
        self._cycle_sensed = np.zeros(self.agent.n_cells, dtype=bool)

    def select_cell(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
    ) -> int:
        sensed_mask = np.asarray(sensed_mask, dtype=bool)
        state = self.agent.state_model.from_observations(observed_matrix, cycle, sensed_mask)
        mask = self.agent.action_space.mask_from_sensed(sensed_mask)
        action = self.agent.agent.select_action(state, mask=mask, greedy=not self.learn)
        self._cycle_states.append(state)
        self._cycle_actions.append(int(action))
        return int(action)

    def end_cycle(self, cycle: int, observed_matrix: np.ndarray) -> None:
        if not self.learn or not self._cycle_actions:
            self._cycles_seen += 1
            return
        self._replay_cycle(cycle, observed_matrix)
        self._cycles_seen += 1

    # -- learning ----------------------------------------------------------------

    def _replay_cycle(self, cycle: int, observed_matrix: np.ndarray) -> None:
        """Convert the finished cycle's selections into transitions and learn."""
        n_steps = len(self._cycle_actions)
        transitions = build_cycle_transitions(
            self.agent,
            self.reward_model,
            self._cycle_states,
            self._cycle_actions,
            cycle,
            observed_matrix,
        )
        losses = []
        for transition in transitions:
            loss = self.agent.agent.observe(transition)
            if loss is not None:
                losses.append(loss)
        if losses:
            self._losses.extend(losses)
            logger.debug(
                "online DR-Cell cycle %d: %d transitions, mean loss %.4f",
                cycle,
                n_steps,
                float(np.mean(losses)),
            )

    # -- introspection -------------------------------------------------------------

    @property
    def cycles_seen(self) -> int:
        """Number of campaign cycles the policy has experienced."""
        return self._cycles_seen

    @property
    def transitions_observed(self) -> int:
        """Total transitions fed to the learner so far."""
        return self.agent.agent.total_steps

    @property
    def mean_recent_loss(self) -> float:
        """Mean TD loss over the last 100 learning steps (NaN before learning starts)."""
        if not self._losses:
            return float("nan")
        return float(np.mean(self._losses[-100:]))


def build_online_policy(
    n_cells: int,
    config: Optional[DRCellConfig] = None,
    *,
    cell_costs: Optional[np.ndarray] = None,
    exploration_decay_cycles: int = 200,
) -> OnlineDRCellPolicy:
    """Convenience constructor for an online DR-Cell policy from scratch.

    Parameters
    ----------
    n_cells:
        Number of cells of the sensing area.
    config:
        DR-Cell configuration (network sizes, replay settings); the default
        configuration works for small and medium areas.
    cell_costs:
        Optional per-cell sensing costs (future-work extension); when given
        the learned policy trades off informativeness against cost.
    exploration_decay_cycles:
        Roughly how many cell selections the δ-greedy exploration takes to
        anneal from its start to its end value.
    """
    config = config or DRCellConfig()
    agent = DRCellAgent.build(n_cells, config)
    reward_model = RewardModel(
        bonus=config.resolve_bonus(n_cells), cost=config.cost, cell_costs=cell_costs
    )
    exploration = LinearDecaySchedule(
        config.exploration_start, config.exploration_end, exploration_decay_cycles
    )
    return OnlineDRCellPolicy(agent, reward_model=reward_model, exploration=exploration)
