"""Tabular DR-Cell (paper §4.2, Algorithm 1 and Figure 5).

For sensing areas with only a handful of cells the Q-function can be kept as
an explicit table over the 2^(k·m) states.  This variant exists both because
the paper describes it as the conceptual stepping stone to the DRQN and
because it is the exact-arithmetic reference the unit tests check the
Figure-5 walk-through against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.action import ActionSpace
from repro.core.config import DRCellConfig
from repro.core.state import DRCellStateModel, state_space_size
from repro.datasets.base import SensingDataset
from repro.mcs.environment import RewardModel, SparseMCSEnvironment
from repro.mcs.policies import CellSelectionPolicy
from repro.quality.epsilon_p import QualityRequirement
from repro.rl.qlearning import TabularQLearner, TabularQLearningConfig
from repro.rl.schedules import LinearDecaySchedule
from repro.utils.logging import get_logger
from repro.utils.seeding import derive_rng
from repro.utils.validation import check_positive_int

logger = get_logger(__name__)

#: Above this many table entries the tabular variant refuses to run and the
#: caller should use the DRQN instead (this is the paper's point about the
#: state-space explosion).
MAX_TRACTABLE_STATES = 2**22


@dataclass
class TabularDRCell:
    """Tabular-Q-learning DR-Cell for small sensing areas.

    Attributes
    ----------
    learner:
        The underlying Q-table learner.
    state_model:
        State encoder shared with the deep variant.
    config:
        The DR-Cell configuration (only the state/reward fields are used).
    """

    learner: TabularQLearner
    state_model: DRCellStateModel
    config: DRCellConfig
    training_info: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        n_cells: int,
        config: Optional[DRCellConfig] = None,
        *,
        learning_rate: float = 0.1,
        discount: float = 0.95,
    ) -> "TabularDRCell":
        """Build an untrained tabular agent, refusing intractably large state spaces."""
        config = config or DRCellConfig()
        n_states = state_space_size(n_cells, config.window)
        if n_states > MAX_TRACTABLE_STATES:
            raise ValueError(
                f"state space of size 2^{config.window * n_cells} is intractable for "
                "tabular Q-learning; use the DRQN variant (DRCellAgent) instead"
            )
        learner = TabularQLearner(
            n_cells,
            TabularQLearningConfig(learning_rate=learning_rate, discount=discount),
            exploration=LinearDecaySchedule(
                config.exploration_start,
                config.exploration_end,
                config.exploration_decay_steps,
            ),
            seed=derive_rng(config.seed, 3),
        )
        return cls(learner=learner, state_model=DRCellStateModel(n_cells, config.window), config=config)

    # -- training -----------------------------------------------------------------

    def train(
        self,
        dataset: SensingDataset,
        requirement: QualityRequirement,
        *,
        episodes: Optional[int] = None,
    ) -> "TabularDRCell":
        """Train on a ground-truth dataset with the training-stage environment."""
        episodes = check_positive_int(
            episodes if episodes is not None else self.config.episodes, "episodes"
        )
        environment = SparseMCSEnvironment(
            dataset,
            requirement,
            window=self.config.window,
            reward_model=RewardModel(
                bonus=self.config.resolve_bonus(dataset.n_cells), cost=self.config.cost
            ),
            min_cells_before_check=self.config.min_cells_before_check,
            history_window=self.config.history_window,
            max_episode_cycles=self.config.max_episode_cycles,
            seed=derive_rng(self.config.seed, 4),
        )
        rewards = []
        for episode in range(episodes):
            total_reward, steps = self.learner.train_episode(environment)
            rewards.append(total_reward)
            logger.debug("tabular episode %d: reward=%.2f steps=%d", episode, total_reward, steps)
        self.training_info.update(
            {
                "episodes": episodes,
                "mean_episode_reward": float(np.mean(rewards)),
                "states_seen": self.learner.n_states_seen,
            }
        )
        return self

    # -- acting ---------------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        return self.state_model.n_cells

    def select_cell(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
        *,
        greedy: bool = True,
    ) -> int:
        state = self.state_model.from_observations(observed_matrix, cycle, sensed_mask)
        mask = ActionSpace(self.n_cells).mask_from_sensed(np.asarray(sensed_mask, dtype=bool))
        return self.learner.select_action(state, mask=mask, greedy=greedy)

    def policy(self, *, greedy: bool = True) -> "TabularDRCellPolicy":
        """A campaign policy view of this tabular agent."""
        return TabularDRCellPolicy(self, greedy=greedy)


class TabularDRCellPolicy(CellSelectionPolicy):
    """Campaign policy backed by a :class:`TabularDRCell`."""

    name = "DR-Cell (tabular)"

    def __init__(self, agent: TabularDRCell, *, greedy: bool = True) -> None:
        self.agent = agent
        self.greedy = bool(greedy)

    def select_cell(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
    ) -> int:
        return self.agent.select_cell(observed_matrix, cycle, sensed_mask, greedy=self.greedy)
