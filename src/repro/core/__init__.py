"""DR-Cell: the paper's deep-reinforcement-learning cell-selection mechanism.

The public entry points are:

* :class:`~repro.core.config.DRCellConfig` — all hyper-parameters of the
  state/reward model and the DRQN training loop in one place.
* :class:`~repro.core.trainer.DRCellTrainer` — trains a
  :class:`~repro.core.drcell.DRCellAgent` on a preliminary-study dataset
  (the training stage of the paper's evaluation protocol).
* :class:`~repro.core.drcell.DRCellAgent` /
  :class:`~repro.core.drcell.DRCellPolicy` — the trained agent and its
  campaign-facing greedy policy.
* :class:`~repro.core.tabular.TabularDRCell` — the tabular-Q-learning
  variant for small sensing areas (paper §4.2).
* :func:`~repro.core.transfer.transfer_train` — the transfer-learning
  procedure for correlated tasks in the same area (paper §4.4).
* :class:`~repro.core.online.OnlineDRCellPolicy` — the paper's future-work
  extension: learn the cell-selection policy online, during the campaign,
  with no preliminary study.
"""

from repro.core.config import DRCellConfig
from repro.core.state import DRCellStateModel, state_space_size
from repro.core.action import ActionSpace
from repro.core.reward import DRCellRewardModel
from repro.core.drcell import DRCellAgent, DRCellPolicy
from repro.core.tabular import TabularDRCell
from repro.core.trainer import DRCellTrainer, TrainingReport
from repro.core.transfer import transfer_train, initialize_from_source
from repro.core.online import OnlineDRCellPolicy, build_online_policy

__all__ = [
    "DRCellConfig",
    "DRCellStateModel",
    "state_space_size",
    "ActionSpace",
    "DRCellRewardModel",
    "DRCellAgent",
    "DRCellPolicy",
    "TabularDRCell",
    "DRCellTrainer",
    "TrainingReport",
    "transfer_train",
    "initialize_from_source",
    "OnlineDRCellPolicy",
    "build_online_policy",
]
