"""Training DR-Cell on a preliminary-study dataset.

The paper's evaluation protocol (§5.3) assumes the organiser runs a 2-day
preliminary study during which every cell's data is collected; that data is
the ground truth the training environment uses to compute exact rewards.
:class:`DRCellTrainer` wraps the environment construction, the deep
Q-learning loop, and a :class:`TrainingReport` of what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.config import DRCellConfig
from repro.core.drcell import DRCellAgent
from repro.datasets.base import SensingDataset
from repro.inference.base import InferenceAlgorithm
from repro.mcs.environment import RewardModel, SparseMCSEnvironment
from repro.mcs.vector import BatchedSparseMCSVectorEnv
from repro.obs.profile import phase
from repro.quality.epsilon_p import QualityRequirement
from repro.rl.dqn import EpisodeStats
from repro.utils.logging import get_logger
from repro.utils.seeding import derive_rng
from repro.utils.timing import monotonic
from repro.utils.validation import check_positive_int

logger = get_logger(__name__)


@dataclass
class TrainingReport:
    """Summary of one DR-Cell training run."""

    episodes: int
    total_steps: int
    wall_clock_seconds: float
    episode_rewards: List[float] = field(default_factory=list)
    episode_selections: List[float] = field(default_factory=list)

    @property
    def mean_episode_reward(self) -> float:
        """Average undiscounted return per episode."""
        return float(np.mean(self.episode_rewards)) if self.episode_rewards else float("nan")

    @property
    def final_episode_reward(self) -> float:
        """Return of the last training episode."""
        return self.episode_rewards[-1] if self.episode_rewards else float("nan")

    @property
    def mean_selections_per_cycle_last_episode(self) -> float:
        """Average submissions per cycle in the final episode (training-time proxy
        of the paper's headline metric)."""
        return self.episode_selections[-1] if self.episode_selections else float("nan")


class DRCellTrainer:
    """Builds the training environment and runs the deep Q-learning loop.

    Parameters
    ----------
    config:
        DR-Cell hyper-parameters.
    inference:
        Inference algorithm used inside the training environment's reward
        computation; defaults to compressive sensing.
    """

    def __init__(
        self,
        config: Optional[DRCellConfig] = None,
        *,
        inference: Optional[InferenceAlgorithm] = None,
    ) -> None:
        self.config = config or DRCellConfig()
        self.inference = inference

    def build_environment(
        self,
        dataset: SensingDataset,
        requirement: QualityRequirement,
        *,
        variant: int = 0,
    ) -> SparseMCSEnvironment:
        """The training-stage environment for ``dataset`` under ``requirement``.

        ``variant`` derives a distinct episode-offset seed per environment so
        that the K lockstep environments of the vectorized engine explore
        different episode windows; variant 0 is the (unchanged) sequential
        environment.
        """
        return SparseMCSEnvironment(
            dataset,
            requirement,
            window=self.config.window,
            inference=self.inference,
            reward_model=RewardModel(
                bonus=self.config.resolve_bonus(dataset.n_cells),
                cost=self.config.cost,
            ),
            min_cells_before_check=self.config.min_cells_before_check,
            history_window=self.config.history_window,
            max_episode_cycles=self.config.max_episode_cycles,
            seed=derive_rng(self.config.seed, 11 + variant),
        )

    def train(
        self,
        dataset: SensingDataset,
        requirement: QualityRequirement,
        *,
        agent: Optional[DRCellAgent] = None,
        episodes: Optional[int] = None,
    ) -> tuple[DRCellAgent, TrainingReport]:
        """Train (or continue training) a DR-Cell agent on ``dataset``.

        Parameters
        ----------
        dataset:
            Preliminary-study data with every cell observed (ground truth).
        requirement:
            The (ε, p)-quality requirement of the task.
        agent:
            An existing agent to continue training (used by transfer
            learning); a fresh agent is built when omitted.
        episodes:
            Override the number of training episodes from the config.

        Returns
        -------
        tuple
            ``(trained_agent, report)``.
        """
        episodes = check_positive_int(
            episodes if episodes is not None else self.config.episodes, "episodes"
        )
        if agent is None:
            agent = DRCellAgent.build(dataset.n_cells, self.config)
        elif agent.n_cells != dataset.n_cells:
            raise ValueError(
                f"agent was built for {agent.n_cells} cells but the dataset has {dataset.n_cells}"
            )

        episode_rewards: List[float] = []
        episode_selections: List[float] = []
        start = monotonic()
        if self.config.vector_envs > 1 or self.config.fused_learning:
            # Fused global-step learning only exists in the vectorized
            # engine, so `fused_learning` with `vector_envs = 1` still routes
            # through the lockstep loop (with a single environment).
            n_envs = min(self.config.vector_envs, episodes)
            environments = [
                self.build_environment(dataset, requirement, variant=index)
                for index in range(n_envs)
            ]
            self._run_lockstep(
                agent, environments, episodes, episode_rewards, episode_selections
            )
        else:
            environment = self.build_environment(dataset, requirement)
            for episode in range(episodes):
                with phase("train.episode"):
                    stats: EpisodeStats = agent.agent.train_episode(environment)
                episode_rewards.append(stats.total_reward)
                cycles = max(1, environment.episode_cycles)
                episode_selections.append(stats.steps / cycles)
                logger.info(
                    "DR-Cell training episode %d/%d: reward=%.1f selections/cycle=%.2f",
                    episode + 1,
                    episodes,
                    stats.total_reward,
                    stats.steps / cycles,
                )
        elapsed = monotonic() - start

        report = TrainingReport(
            episodes=episodes,
            total_steps=agent.agent.total_steps,
            wall_clock_seconds=elapsed,
            episode_rewards=episode_rewards,
            episode_selections=episode_selections,
        )
        agent.training_info.update(
            {
                "dataset": dataset.name,
                "episodes_trained": agent.training_info.get("episodes_trained", 0) + episodes,
                "last_training_seconds": elapsed,
                "requirement": requirement.describe(),
            }
        )
        return agent, report

    def train_lockstep(
        self,
        datasets: Sequence[SensingDataset],
        requirements: Union[QualityRequirement, Sequence[QualityRequirement]],
        *,
        agent: Optional[DRCellAgent] = None,
        episodes: Optional[int] = None,
    ) -> tuple[DRCellAgent, TrainingReport]:
        """Train one agent across heterogeneous (dataset, requirement) pairs.

        This is the mixed-dataset / mixed-requirement counterpart of
        :meth:`train`: one environment is built per pair and all of them are
        stepped in lockstep by the vectorized engine
        (:class:`~repro.mcs.vector.BatchedSparseMCSVectorEnv` driving
        :meth:`~repro.rl.dqn.DQNAgent.train_episodes_vectorized`), batching
        action selection and the quality-check inference across the fleet.
        The datasets may differ in values, cycle counts and requirements but
        must agree on the number of cells (the action space).

        ``config.vector_envs`` is ignored here — the fleet size is simply the
        number of pairs.

        Parameters
        ----------
        datasets:
            One preliminary-study dataset per training slot.
        requirements:
            One (ε, p)-requirement per dataset, or a single requirement
            shared by all.
        agent:
            An existing agent to continue training; built fresh when omitted.
        episodes:
            Total episodes across the fleet (defaults to the config's).

        Returns
        -------
        tuple
            ``(trained_agent, report)``.
        """
        datasets = list(datasets)
        if not datasets:
            raise ValueError("at least one dataset is required")
        if isinstance(requirements, QualityRequirement):
            requirements = [requirements] * len(datasets)
        requirements = list(requirements)
        if len(requirements) != len(datasets):
            raise ValueError(
                f"{len(requirements)} requirements for {len(datasets)} datasets; "
                "provide one per dataset or a single shared requirement"
            )
        n_cells = datasets[0].n_cells
        for index, candidate in enumerate(datasets):
            if candidate.n_cells != n_cells:
                raise ValueError(
                    f"dataset {index} has {candidate.n_cells} cells, expected {n_cells}; "
                    "lockstep training requires a shared action space"
                )
        episodes = check_positive_int(
            episodes if episodes is not None else self.config.episodes, "episodes"
        )
        if agent is None:
            agent = DRCellAgent.build(n_cells, self.config)
        elif agent.n_cells != n_cells:
            raise ValueError(
                f"agent was built for {agent.n_cells} cells but the datasets have {n_cells}"
            )

        environments = [
            self.build_environment(dataset, requirement, variant=index)
            for index, (dataset, requirement) in enumerate(zip(datasets, requirements))
        ]
        episode_rewards: List[float] = []
        episode_selections: List[float] = []
        start = monotonic()
        self._run_lockstep(agent, environments, episodes, episode_rewards, episode_selections)
        elapsed = monotonic() - start

        report = TrainingReport(
            episodes=episodes,
            total_steps=agent.agent.total_steps,
            wall_clock_seconds=elapsed,
            episode_rewards=episode_rewards,
            episode_selections=episode_selections,
        )
        dataset_names = sorted({dataset.name for dataset in datasets})
        requirement_names = sorted({requirement.describe() for requirement in requirements})
        agent.training_info.update(
            {
                "dataset": " + ".join(dataset_names),
                "episodes_trained": agent.training_info.get("episodes_trained", 0) + episodes,
                "last_training_seconds": elapsed,
                "requirement": " + ".join(requirement_names),
            }
        )
        return agent, report

    def _run_lockstep(
        self,
        agent: DRCellAgent,
        environments: List[SparseMCSEnvironment],
        episodes: int,
        episode_rewards: List[float],
        episode_selections: List[float],
    ) -> None:
        """Drive the vectorized training loop and collect per-episode statistics.

        ``config.fused_learning`` forces the fused global-step schedule even
        for agents whose own DQN config predates the knob (e.g. transferred
        agents); otherwise the agent's config decides.
        """
        vector_env = BatchedSparseMCSVectorEnv(environments)
        with phase("train.lockstep"):
            history = agent.agent.train_episodes_vectorized(
                vector_env,
                episodes,
                log_every=0,
                fused=True if self.config.fused_learning else None,
            )
        for position, stats in enumerate(history):
            episode_rewards.append(stats.total_reward)
            cycles = max(1, int(stats.extra.get("episode_cycles", 1)))
            episode_selections.append(stats.steps / cycles)
            logger.info(
                "DR-Cell training episode %d/%d (env %d): reward=%.1f "
                "selections/cycle=%.2f",
                position + 1,
                episodes,
                int(stats.extra.get("env_index", 0)),
                stats.total_reward,
                stats.steps / cycles,
            )
