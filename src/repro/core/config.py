"""Configuration of the DR-Cell mechanism.

Everything that parameterises DR-Cell — the state window, the reward
constants, the DRQN architecture and the training loop — lives in
:class:`DRCellConfig` so that experiments can be described as data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.rl.dqn import DQNConfig
from repro.utils.validation import check_non_negative, check_positive, check_positive_int


@dataclass
class DRCellConfig:
    """Hyper-parameters of DR-Cell.

    Attributes
    ----------
    window:
        Number of recent cycles k in the state ``S = [s_{-k+1}, …, s_0]``.
    cost:
        Per-submission cost c in the reward ``R = q·bonus − c``.
    bonus:
        Quality bonus R.  ``None`` means "use the number of cells", the value
        the paper's tabular example uses.
    recurrent:
        True (default) for the DRQN (LSTM) architecture the paper proposes;
        False for the dense-DQN ablation.
    lstm_hidden:
        LSTM hidden size (recurrent architecture).
    dense_hidden:
        Hidden widths of the dense head (recurrent architecture) or of the
        whole network (feed-forward architecture).
    learning_rate:
        Optimizer learning rate.
    episodes:
        Number of training episodes (one episode = one pass over the
        training cycles).
    exploration_start / exploration_end / exploration_decay_steps:
        δ-greedy schedule: linear decay from start to end over the given
        number of agent steps.
    min_cells_before_check:
        Submissions collected in a cycle before the first quality check
        during training.
    history_window:
        Past cycles included in the inference matrix during training.
    max_episode_cycles:
        Optional cap on cycles per episode (episodes start at random
        offsets), which shortens episodes for large training sets.
    vector_envs:
        Number of training environments stepped in lockstep by the
        vectorized engine.  The default 1 preserves the paper's exact
        sequential protocol (and its seeded behaviour bit for bit); values
        above 1 batch action selection and the quality-check inference
        across K environments for throughput, at the cost of bit-exactness
        of the inference (see ``CompressiveSensingInference.complete_batch``).
    fused_learning:
        When True, the vectorized engine learns at global-step granularity:
        one minibatch TD update per lockstep step across the K environments
        (spanning all K fresh transitions, gathered from the replay ring in
        one strided read) instead of K per-transition updates in environment
        order.  This removes the NN update loop as the large-K bottleneck.
        The default False preserves the per-transition protocol; combined
        with ``vector_envs = 1`` that is the paper's exact sequential
        behaviour bit for bit.  Setting ``fused_learning = True`` with
        ``vector_envs = 1`` routes training through the vectorized engine
        with a single environment so the fused schedule applies.
    dqn:
        Inner deep-Q-learning loop configuration (replay, batch size, target
        update interval, discount).
    seed:
        Master seed for the agent, network initialisation, and exploration.
    """

    window: int = 2
    cost: float = 1.0
    bonus: Optional[float] = None
    recurrent: bool = True
    lstm_hidden: int = 64
    dense_hidden: Tuple[int, ...] = (64,)
    learning_rate: float = 1e-3
    episodes: int = 20
    exploration_start: float = 1.0
    exploration_end: float = 0.05
    exploration_decay_steps: int = 2_000
    min_cells_before_check: int = 2
    history_window: int = 12
    max_episode_cycles: Optional[int] = None
    vector_envs: int = 1
    fused_learning: bool = False
    dqn: DQNConfig = field(default_factory=DQNConfig)
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        check_positive_int(self.window, "window")
        check_non_negative(self.cost, "cost")
        if self.bonus is not None:
            check_non_negative(self.bonus, "bonus")
        check_positive_int(self.lstm_hidden, "lstm_hidden")
        self.dense_hidden = tuple(
            check_positive_int(width, "dense_hidden entry") for width in self.dense_hidden
        )
        check_positive(self.learning_rate, "learning_rate")
        check_positive_int(self.episodes, "episodes")
        check_positive_int(self.exploration_decay_steps, "exploration_decay_steps")
        check_positive_int(self.min_cells_before_check, "min_cells_before_check")
        check_positive_int(self.history_window, "history_window")
        if self.max_episode_cycles is not None:
            check_positive_int(self.max_episode_cycles, "max_episode_cycles")
        check_positive_int(self.vector_envs, "vector_envs")
        self.fused_learning = bool(self.fused_learning)
        if not 0.0 <= self.exploration_end <= self.exploration_start <= 1.0:
            raise ValueError(
                "exploration schedule must satisfy 0 <= end <= start <= 1, got "
                f"start={self.exploration_start}, end={self.exploration_end}"
            )

    def resolve_bonus(self, n_cells: int) -> float:
        """The reward bonus actually used for an area with ``n_cells`` cells."""
        return float(n_cells) if self.bonus is None else float(self.bonus)

    def scaled_for_quick_run(self) -> "DRCellConfig":
        """A copy with drastically reduced training effort (tests, smoke runs)."""
        return replace(
            self,
            episodes=2,
            exploration_decay_steps=200,
            lstm_hidden=16,
            dense_hidden=(16,),
            dqn=DQNConfig(
                discount=self.dqn.discount,
                batch_size=8,
                replay_capacity=500,
                min_replay_size=16,
                target_update_interval=25,
                learn_every=2,
            ),
        )
