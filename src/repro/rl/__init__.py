"""Reinforcement-learning substrate.

Implements the general-purpose machinery DR-Cell builds on:

* :class:`~repro.rl.replay.ArrayReplayBuffer` — array-backed experience
  replay (paper §4.3); :class:`~repro.rl.replay.ReplayBuffer` is its
  backward-compatible alias.
* :class:`~repro.rl.vector_env.VectorEnv` — K independent environments
  stepped in lockstep for the vectorized training engine.
* :mod:`~repro.rl.schedules` — δ-greedy exploration schedules (the paper's
  "δ-greedy algorithm" with a decaying δ).
* :class:`~repro.rl.qlearning.TabularQLearner` — Algorithm 1's Q-table
  learner for small state spaces.
* :class:`~repro.rl.dqn.DQNAgent` — Algorithm 2's deep Q-learning loop with
  experience replay and fixed Q-targets, parameterised by any
  :class:`~repro.nn.network.QNetworkBase` (feed-forward DQN or recurrent
  DRQN).
* :class:`~repro.rl.environment.Environment` — the minimal episodic
  environment protocol shared by the agents and the Sparse-MCS wrapper.
"""

from repro.rl.environment import Environment, Transition
from repro.rl.replay import ArrayReplayBuffer, ReplayBuffer
from repro.rl.vector_env import VectorEnv
from repro.rl.schedules import ConstantSchedule, ExponentialDecaySchedule, LinearDecaySchedule, Schedule
from repro.rl.qlearning import TabularQLearner, TabularQLearningConfig
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.drqn import build_drqn_agent, build_dqn_agent

__all__ = [
    "Environment",
    "Transition",
    "ArrayReplayBuffer",
    "ReplayBuffer",
    "VectorEnv",
    "Schedule",
    "ConstantSchedule",
    "LinearDecaySchedule",
    "ExponentialDecaySchedule",
    "TabularQLearner",
    "TabularQLearningConfig",
    "DQNAgent",
    "DQNConfig",
    "build_drqn_agent",
    "build_dqn_agent",
]
