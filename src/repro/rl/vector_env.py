"""Lockstep execution of K independent environments.

:class:`VectorEnv` is the rollout-side half of the vectorized training
engine: it owns K :class:`~repro.rl.environment.Environment` instances and
steps them together, so the agent can amortise one batched network forward
over K action selections.  The environments are independent — they may carry
different seeds, datasets or quality requirements — they only need to agree
on the action space.

The base class steps each environment with its ordinary ``step`` method,
which keeps per-environment semantics (and numerics) exactly those of the
sequential loop.  Domain-specific subclasses (see
:class:`~repro.mcs.vector.BatchedSparseMCSVectorEnv`) override
:meth:`VectorEnv.step_many` to batch expensive per-step work such as the
quality-check inference across environments.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.rl.environment import Environment

StepResult = Tuple[np.ndarray, float, bool, Dict[str, Any]]


class VectorEnv:
    """K independent environments stepped in lockstep.

    Parameters
    ----------
    envs:
        The environments to drive.  All must share ``n_actions``.
    """

    def __init__(self, envs: Sequence[Environment]) -> None:
        envs = list(envs)
        if not envs:
            raise ValueError("VectorEnv requires at least one environment")
        n_actions = envs[0].n_actions
        for index, env in enumerate(envs):
            if env.n_actions != n_actions:
                raise ValueError(
                    f"environment {index} has {env.n_actions} actions, expected {n_actions}"
                )
        self.envs: List[Environment] = envs

    @property
    def n_envs(self) -> int:
        return len(self.envs)

    @property
    def n_actions(self) -> int:
        return self.envs[0].n_actions

    def reset_one(self, index: int) -> np.ndarray:
        """Start a new episode in environment ``index``; return its initial state."""
        return self.envs[index].reset()

    def reset_all(self) -> List[np.ndarray]:
        """Reset every environment and return the initial states."""
        return [env.reset() for env in self.envs]

    def valid_action_mask(self, index: int) -> np.ndarray:
        """Valid-action mask of environment ``index``."""
        return self.envs[index].valid_action_mask()

    def valid_action_masks(self, indices: Sequence[int]) -> np.ndarray:
        """Valid-action masks of the given environments as one ``(len(indices),
        n_actions)`` boolean array.

        The stacked form is what the vectorized training loop consumes: one
        row per active environment, shape-checked here once instead of per
        row in the agent.
        """
        masks = np.empty((len(indices), self.n_actions), dtype=bool)
        for row, index in enumerate(indices):
            mask = np.asarray(self.envs[index].valid_action_mask(), dtype=bool)
            if mask.shape != (self.n_actions,):
                raise ValueError(
                    f"environment {index} returned a mask of shape {mask.shape}, "
                    f"expected ({self.n_actions},)"
                )
            masks[row] = mask
        return masks

    def step_many(self, indexed_actions: Sequence[Tuple[int, int]]) -> List[StepResult]:
        """Step the given ``(env_index, action)`` pairs; return results in order.

        The base implementation simply loops; subclasses may batch shared
        work across the stepped environments.
        """
        return [self.envs[index].step(action) for index, action in indexed_actions]
