"""Experience replay buffers (paper §4.3).

Two implementations share one API:

* :class:`ArrayReplayBuffer` — the storage engine.  Transitions live in
  preallocated contiguous arrays (``(capacity, *state_shape)`` for states,
  flat arrays for actions/rewards/dones), insertion writes into the ring
  slot in place, and :meth:`ArrayReplayBuffer.sample_arrays` is a single
  fancy-index gather with no per-sample stacking or Python-object traffic.
* :class:`ReplayBuffer` — a thin backward-compatible alias kept so existing
  callers and tests continue to work unchanged.

Sampling draws indices with ``rng.choice(size, batch, replace=False)`` —
the exact call the original list-backed buffer made — so seeded runs
reproduce the historical sampling stream bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.rl.environment import Transition
from repro.utils.seeding import RngLike, as_rng
from repro.utils.validation import check_positive_int


class ArrayReplayBuffer:
    """Fixed-capacity uniform experience replay over preallocated arrays.

    Parameters
    ----------
    capacity:
        Maximum number of transitions kept; the oldest are evicted first.
    state_shape:
        Shape of a single state.  May be omitted, in which case the storage
        is allocated lazily from the first transition added.
    seed:
        Seed or generator for the sampling stream.
    """

    def __init__(
        self,
        capacity: int,
        *,
        state_shape: Optional[Tuple[int, ...]] = None,
        seed: RngLike = None,
    ) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        self._rng = as_rng(seed)
        self._size = 0
        self._next_index = 0
        self._states: Optional[np.ndarray] = None
        self._next_states: Optional[np.ndarray] = None
        self._actions = np.zeros(self.capacity, dtype=int)
        self._rewards = np.zeros(self.capacity, dtype=float)
        self._dones = np.zeros(self.capacity, dtype=bool)
        self._infos: List[Dict[str, Any]] = [{} for _ in range(self.capacity)]
        if state_shape is not None:
            self._allocate(tuple(int(d) for d in state_shape))

    # -- storage -----------------------------------------------------------

    @property
    def state_shape(self) -> Optional[Tuple[int, ...]]:
        """Shape of a stored state, or None before the first insertion."""
        if self._states is None:
            return None
        return self._states.shape[1:]

    def _allocate(self, state_shape: Tuple[int, ...]) -> None:
        self._states = np.zeros((self.capacity, *state_shape), dtype=float)
        self._next_states = np.zeros((self.capacity, *state_shape), dtype=float)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Transition]:
        return iter([self._transition_at(i) for i in range(self._size)])

    @property
    def is_full(self) -> bool:
        """True once the buffer has reached its capacity."""
        return self._size == self.capacity

    def _transition_at(self, index: int) -> Transition:
        return Transition(
            self._states[index].copy(),
            int(self._actions[index]),
            float(self._rewards[index]),
            self._next_states[index].copy(),
            bool(self._dones[index]),
            info=self._infos[index],
        )

    # -- insertion ---------------------------------------------------------

    def add(self, transition: Transition) -> None:
        """Insert one transition, evicting the oldest when at capacity."""
        if not isinstance(transition, Transition):
            raise TypeError(f"expected Transition, got {type(transition).__name__}")
        self.add_step(
            transition.state,
            transition.action,
            transition.reward,
            transition.next_state,
            transition.done,
            info=transition.info,
        )

    def add_step(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        *,
        info: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Insert one step without constructing a :class:`Transition` object.

        This is the hot-path entry used by the vectorized rollout engine: the
        state arrays are copied straight into the ring slot.
        """
        state = np.asarray(state, dtype=float)
        next_state = np.asarray(next_state, dtype=float)
        if state.shape != next_state.shape:
            raise ValueError(
                f"state shape {state.shape} != next_state shape {next_state.shape}"
            )
        if self._states is None:
            self._allocate(state.shape)
        elif state.shape != self._states.shape[1:]:
            raise ValueError(
                f"state shape {state.shape} does not match buffer state shape "
                f"{self._states.shape[1:]}"
            )
        slot = self._next_index
        self._states[slot] = state
        self._next_states[slot] = next_state
        self._actions[slot] = int(action)
        self._rewards[slot] = float(reward)
        self._dones[slot] = bool(done)
        self._infos[slot] = dict(info) if info else {}
        self._next_index = (slot + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def extend(self, transitions: Sequence[Transition]) -> None:
        """Insert several transitions in order."""
        for transition in transitions:
            self.add(transition)

    def add_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        *,
        infos: Optional[Sequence[Optional[Dict[str, Any]]]] = None,
    ) -> None:
        """Insert K transitions with one strided ring write per storage array.

        This is the insertion half of the fused global-step learning path:
        the K lockstep transitions of one global step land in consecutive
        ring slots (wrapping modulo the capacity) via a single fancy-indexed
        assignment per array, instead of K Python-level :meth:`add_step`
        calls.  Equivalent to ``for t in batch: add_step(*t)`` — including
        eviction order when the write wraps past the end of the ring.
        """
        states = np.asarray(states, dtype=float)
        next_states = np.asarray(next_states, dtype=float)
        if states.shape != next_states.shape:
            raise ValueError(
                f"states shape {states.shape} != next_states shape {next_states.shape}"
            )
        if states.ndim < 2:
            raise ValueError("add_batch expects a leading batch dimension")
        count = states.shape[0]
        if count == 0:
            return
        actions = np.asarray(actions, dtype=int)
        rewards = np.asarray(rewards, dtype=float)
        dones = np.asarray(dones, dtype=bool)
        if actions.shape != (count,) or rewards.shape != (count,) or dones.shape != (count,):
            raise ValueError(
                "actions, rewards and dones must be 1-D arrays matching the batch size"
            )
        if infos is not None and len(infos) != count:
            raise ValueError(f"{len(infos)} infos for {count} transitions")
        if self._states is None:
            self._allocate(states.shape[1:])
        elif states.shape[1:] != self._states.shape[1:]:
            raise ValueError(
                f"state shape {states.shape[1:]} does not match buffer state shape "
                f"{self._states.shape[1:]}"
            )
        slots = (self._next_index + np.arange(count)) % self.capacity
        if count > self.capacity:
            # Only the last `capacity` transitions survive.  Keep the exact
            # suffix sequential insertion would have kept, in the exact ring
            # slots it would have landed them in.
            keep = slice(count - self.capacity, None)
            states, next_states = states[keep], next_states[keep]
            actions, rewards, dones = actions[keep], rewards[keep], dones[keep]
            infos = infos[keep] if infos is not None else None
            slots = slots[keep]
        self._states[slots] = states
        self._next_states[slots] = next_states
        self._actions[slots] = actions
        self._rewards[slots] = rewards
        self._dones[slots] = dones
        for position, slot in enumerate(slots):
            info = infos[position] if infos is not None else None
            self._infos[slot] = dict(info) if info else {}
        self._next_index = int((self._next_index + count) % self.capacity)
        self._size = min(self._size + count, self.capacity)

    # -- sampling ----------------------------------------------------------

    def sample_indices(self, batch_size: int) -> np.ndarray:
        """Draw ``batch_size`` distinct storage indices uniformly at random."""
        batch_size = check_positive_int(batch_size, "batch_size")
        if batch_size > self._size:
            raise ValueError(
                f"cannot sample {batch_size} transitions from a buffer of size "
                f"{self._size}"
            )
        return self._rng.choice(self._size, size=batch_size, replace=False)

    def recent_indices(self, count: int) -> np.ndarray:
        """Storage indices of the ``count`` most recent insertions, oldest first.

        Handles ring wraparound: once the buffer is full the most recent
        window may straddle the physical end of the storage arrays, in which
        case the returned indices wrap modulo the capacity.  Together with
        :meth:`gather` this lets the fused learning step pull the K
        transitions of the current global step (plus random fill) in a single
        fancy-indexed gather.
        """
        count = check_positive_int(count, "count")
        if count > self._size:
            raise ValueError(
                f"cannot take the {count} most recent transitions from a buffer "
                f"of size {self._size}"
            )
        # Before the first wraparound `_next_index == _size`, so the same
        # modular arithmetic covers both the partially-filled and full ring.
        return (self._next_index - count + np.arange(count)) % self.capacity

    def gather(self, indices: np.ndarray):
        """Fetch the transitions at ``indices`` as stacked arrays.

        One fancy-index gather per storage array; the same return layout as
        :meth:`sample_arrays`.  ``indices`` are storage indices (e.g. from
        :meth:`sample_indices` or :meth:`recent_indices`) and may repeat.
        """
        indices = np.asarray(indices, dtype=int)
        if indices.size and (indices.min() < 0 or indices.max() >= self._size):
            raise IndexError(
                f"storage index out of range for buffer of size {self._size}"
            )
        return (
            self._states[indices],
            self._actions[indices],
            self._rewards[indices],
            self._next_states[indices],
            self._dones[indices],
        )

    def sample(self, batch_size: int) -> List[Transition]:
        """Sample ``batch_size`` transitions uniformly without replacement.

        Raises if the buffer holds fewer than ``batch_size`` transitions, so
        callers are forced to warm up the buffer before learning starts.
        """
        indices = self.sample_indices(batch_size)
        return [self._transition_at(int(i)) for i in indices]

    def sample_arrays(self, batch_size: int):
        """Sample a batch as stacked arrays ready for the Q-network.

        Returns
        -------
        tuple
            ``(states, actions, rewards, next_states, dones)`` with shapes
            ``(B, …)``, ``(B,)``, ``(B,)``, ``(B, …)``, ``(B,)``.
        """
        return self.gather(self.sample_indices(batch_size))

    def clear(self) -> None:
        """Drop all stored transitions (storage stays allocated)."""
        self._size = 0
        self._next_index = 0
        self._infos = [{} for _ in range(self.capacity)]

    # -- round-tripping ----------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Serializable buffer state: contents in insertion order + RNG stream.

        The ring's physical layout is fully determined by ``(size,
        next_index, contents-in-insertion-order)`` — before the first
        wraparound insertions occupy slots ``0..size-1``, afterwards slot
        ``(next_index + i) % capacity`` holds the ``i``-th oldest surviving
        transition — so the state stores only the live transitions (gathered
        oldest-first), not the full preallocated arrays.  ``info`` dicts are
        not serialized; the batched serving path never populates them.
        """
        from repro.utils.statedict import encode_array, rng_state

        state: Dict[str, Any] = {
            "capacity": self.capacity,
            "size": self._size,
            "next_index": self._next_index,
            "rng": rng_state(self._rng),
            "contents": None,
        }
        if self._size:
            order = (self._next_index - self._size + np.arange(self._size)) % self.capacity
            states, actions, rewards, next_states, dones = self.gather(order)
            state["contents"] = {
                "states": encode_array(states),
                "actions": encode_array(actions),
                "rewards": encode_array(rewards),
                "next_states": encode_array(next_states),
                "dones": encode_array(dones),
            }
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output bitwise (layout and RNG stream)."""
        from repro.utils.statedict import decode_array, set_rng_state

        if int(state["capacity"]) != self.capacity:
            raise ValueError(
                f"checkpoint replay capacity {state['capacity']} does not match "
                f"this buffer's capacity {self.capacity}"
            )
        self.clear()
        size = int(state["size"])
        next_index = int(state["next_index"])
        contents = state["contents"]
        if size:
            states = decode_array(contents["states"])
            if self._states is None:
                self._allocate(states.shape[1:])
            slots = (next_index - size + np.arange(size)) % self.capacity
            self._states[slots] = states
            self._next_states[slots] = decode_array(contents["next_states"])
            self._actions[slots] = decode_array(contents["actions"])
            self._rewards[slots] = decode_array(contents["rewards"])
            self._dones[slots] = decode_array(contents["dones"])
        self._size = size
        self._next_index = next_index
        set_rng_state(self._rng, state["rng"])


class ReplayBuffer(ArrayReplayBuffer):
    """Backward-compatible name for the array-backed replay buffer.

    The original list-of-:class:`Transition` implementation was replaced by
    :class:`ArrayReplayBuffer`; this subclass keeps the old constructor
    signature and behaviour for existing callers.
    """

    def __init__(self, capacity: int, *, seed: RngLike = None) -> None:
        super().__init__(capacity, seed=seed)
