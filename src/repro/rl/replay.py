"""Experience replay buffer (paper §4.3).

The buffer stores :class:`~repro.rl.environment.Transition` records in a
fixed-capacity ring and samples uniformly at random, which decorrelates the
gradient updates of the Q-network.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.rl.environment import Transition
from repro.utils.seeding import RngLike, as_rng
from repro.utils.validation import check_positive_int


class ReplayBuffer:
    """Fixed-capacity uniform experience replay.

    Parameters
    ----------
    capacity:
        Maximum number of transitions kept; the oldest are evicted first.
    seed:
        Seed or generator for the sampling stream.
    """

    def __init__(self, capacity: int, *, seed: RngLike = None) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        self._storage: List[Transition] = []
        self._next_index = 0
        self._rng = as_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    def __iter__(self) -> Iterator[Transition]:
        return iter(list(self._storage))

    @property
    def is_full(self) -> bool:
        """True once the buffer has reached its capacity."""
        return len(self._storage) == self.capacity

    def add(self, transition: Transition) -> None:
        """Insert one transition, evicting the oldest when at capacity."""
        if not isinstance(transition, Transition):
            raise TypeError(f"expected Transition, got {type(transition).__name__}")
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._next_index] = transition
        self._next_index = (self._next_index + 1) % self.capacity

    def extend(self, transitions: Sequence[Transition]) -> None:
        """Insert several transitions in order."""
        for transition in transitions:
            self.add(transition)

    def sample(self, batch_size: int) -> List[Transition]:
        """Sample ``batch_size`` transitions uniformly with replacement-free draws.

        Raises if the buffer holds fewer than ``batch_size`` transitions, so
        callers are forced to warm up the buffer before learning starts.
        """
        batch_size = check_positive_int(batch_size, "batch_size")
        if batch_size > len(self._storage):
            raise ValueError(
                f"cannot sample {batch_size} transitions from a buffer of size "
                f"{len(self._storage)}"
            )
        indices = self._rng.choice(len(self._storage), size=batch_size, replace=False)
        return [self._storage[int(i)] for i in indices]

    def sample_arrays(self, batch_size: int):
        """Sample a batch and stack it into arrays ready for the Q-network.

        Returns
        -------
        tuple
            ``(states, actions, rewards, next_states, dones)`` with shapes
            ``(B, …)``, ``(B,)``, ``(B,)``, ``(B, …)``, ``(B,)``.
        """
        batch = self.sample(batch_size)
        states = np.stack([t.state for t in batch])
        actions = np.asarray([t.action for t in batch], dtype=int)
        rewards = np.asarray([t.reward for t in batch], dtype=float)
        next_states = np.stack([t.next_state for t in batch])
        dones = np.asarray([t.done for t in batch], dtype=bool)
        return states, actions, rewards, next_states, dones

    def clear(self) -> None:
        """Drop all stored transitions."""
        self._storage.clear()
        self._next_index = 0
