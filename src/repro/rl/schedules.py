"""Exploration-rate schedules for the δ-greedy policy.

The paper starts training with a relatively large exploration probability δ
and gradually reduces it as training proceeds (§4.2).  Schedules map a step
counter to the exploration probability used at that step.
"""

from __future__ import annotations

import abc

from repro.utils.validation import check_non_negative, check_positive_int, check_probability


class Schedule(abc.ABC):
    """A mapping from training step to exploration probability δ ∈ [0, 1]."""

    @abc.abstractmethod
    def value(self, step: int) -> float:
        """Return δ at ``step`` (0-based)."""

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        delta = self.value(step)
        # Guard subclasses against drifting outside [0, 1].
        return min(1.0, max(0.0, float(delta)))


class ConstantSchedule(Schedule):
    """δ fixed for the whole run (useful for evaluation or ablations)."""

    def __init__(self, delta: float) -> None:
        self.delta = check_probability(delta, "delta")

    def value(self, step: int) -> float:
        return self.delta


class LinearDecaySchedule(Schedule):
    """Linear interpolation from ``start`` to ``end`` over ``decay_steps`` steps."""

    def __init__(self, start: float = 1.0, end: float = 0.05, decay_steps: int = 10_000) -> None:
        self.start = check_probability(start, "start")
        self.end = check_probability(end, "end")
        self.decay_steps = check_positive_int(decay_steps, "decay_steps")

    def value(self, step: int) -> float:
        if step >= self.decay_steps:
            return self.end
        fraction = step / self.decay_steps
        return self.start + fraction * (self.end - self.start)


class ExponentialDecaySchedule(Schedule):
    """Exponential decay ``end + (start - end)·exp(-step/tau)``."""

    def __init__(self, start: float = 1.0, end: float = 0.05, tau: float = 2_000.0) -> None:
        self.start = check_probability(start, "start")
        self.end = check_probability(end, "end")
        self.tau = check_non_negative(tau, "tau")
        if self.tau == 0:
            raise ValueError("tau must be strictly positive")

    def value(self, step: int) -> float:
        import math

        return self.end + (self.start - self.end) * math.exp(-step / self.tau)
