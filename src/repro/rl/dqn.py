"""Deep Q-learning with experience replay and fixed Q-targets (paper §4.3, Algorithm 2).

:class:`DQNAgent` is architecture-agnostic: it accepts any
:class:`~repro.nn.network.QNetworkBase`, so the same loop drives both the
feed-forward DQN ablation and the paper's recurrent DRQN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.nn.network import QNetworkBase
from repro.rl.environment import Environment, Transition
from repro.rl.replay import ArrayReplayBuffer
from repro.rl.schedules import LinearDecaySchedule, Schedule
from repro.rl.vector_env import VectorEnv
from repro.utils.logging import get_logger
from repro.utils.seeding import RngLike, as_rng
from repro.utils.validation import check_positive_int, check_probability

logger = get_logger(__name__)


@dataclass
class DQNConfig:
    """Hyper-parameters of the deep Q-learning loop.

    Attributes
    ----------
    discount:
        γ used in the TD target.
    batch_size:
        Minibatch size sampled from the replay buffer per learning step.
    replay_capacity:
        Capacity of the replay buffer.
    min_replay_size:
        Number of transitions that must be collected before learning starts.
    target_update_interval:
        Number of learning steps between copies of the online network into
        the fixed-target network (the paper's ``REPLACE_ITER``).
    learn_every:
        Environment steps between gradient updates (global steps between
        updates when ``fused_learning`` is on).
    fused_learning:
        When True, :meth:`DQNAgent.train_episodes_vectorized` learns at
        global-step granularity: after each lockstep step across the K
        environments, exactly one minibatch — the K fresh transitions plus
        random replay fill — is gathered from the ring in one strided read
        and trained with a single ``train_on_batch`` call, instead of K
        per-transition updates in environment order.  Target-network syncs
        and the ``learn_every`` cadence then count global steps.  The
        default False preserves the per-transition protocol (bit-exact at
        K=1 with the sequential loop).
    """

    discount: float = 0.95
    batch_size: int = 32
    replay_capacity: int = 10_000
    min_replay_size: int = 200
    target_update_interval: int = 100
    learn_every: int = 1
    fused_learning: bool = False

    def __post_init__(self) -> None:
        self.discount = check_probability(self.discount, "discount")
        for name in (
            "batch_size",
            "replay_capacity",
            "min_replay_size",
            "target_update_interval",
            "learn_every",
        ):
            setattr(self, name, check_positive_int(getattr(self, name), name))
        self.fused_learning = bool(self.fused_learning)
        if self.min_replay_size < self.batch_size:
            raise ValueError(
                "min_replay_size must be at least batch_size "
                f"({self.min_replay_size} < {self.batch_size})"
            )
        if self.replay_capacity < self.min_replay_size:
            raise ValueError(
                "replay_capacity must be at least min_replay_size "
                f"({self.replay_capacity} < {self.min_replay_size})"
            )


@dataclass
class EpisodeStats:
    """Summary statistics for one training episode."""

    episode: int
    total_reward: float
    steps: int
    mean_loss: float
    final_delta: float
    extra: Dict[str, float] = field(default_factory=dict)


class DQNAgent:
    """Deep Q-learning agent with experience replay and fixed Q-targets.

    Parameters
    ----------
    network:
        The online Q-network; a deep copy of it becomes the target network.
    config:
        Loop hyper-parameters.
    exploration:
        δ schedule; defaults to a linear decay from 1.0 to 0.05.
    seed:
        Seed for exploration randomness and replay sampling.
    """

    def __init__(
        self,
        network: QNetworkBase,
        config: Optional[DQNConfig] = None,
        *,
        exploration: Optional[Schedule] = None,
        seed: RngLike = None,
    ) -> None:
        self.online = network
        self.target = network.clone()
        self.config = config or DQNConfig()
        self.exploration = exploration or LinearDecaySchedule(1.0, 0.05, 5_000)
        self._rng = as_rng(seed)
        self.replay = ArrayReplayBuffer(self.config.replay_capacity, seed=self._rng)
        self.total_steps = 0
        self.learn_steps = 0
        self.global_steps = 0

    @property
    def n_actions(self) -> int:
        return self.online.n_actions

    # -- acting ------------------------------------------------------------

    def select_action(
        self,
        state: np.ndarray,
        *,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        """δ-greedy action selection restricted to valid actions."""
        mask = self._validate_mask(mask)
        valid = np.flatnonzero(mask)
        if valid.size == 0:
            raise ValueError("no valid actions available")
        delta = 0.0 if greedy else self.exploration(self.total_steps)
        if self._rng.random() < delta:
            return int(self._rng.choice(valid))
        return self._greedy_from_q(self.online.q_values(state), mask)

    def _greedy_from_q(self, q: np.ndarray, mask: np.ndarray) -> int:
        """Masked argmax with uniform random tie-breaking over the best actions."""
        masked = np.where(mask, q, -np.inf)
        best = float(masked.max())
        candidates = np.flatnonzero(masked == best)
        return int(self._rng.choice(candidates))

    def select_actions(
        self,
        states: Sequence[np.ndarray],
        *,
        masks: Optional[Sequence[Optional[np.ndarray]]] = None,
        greedy: Union[bool, Sequence[bool]] = False,
    ) -> List[int]:
        """δ-greedy selection for several states with one stacked forward pass.

        The serving hot path: N pending policy queries against one shared
        agent cost one ``predict`` over the stacked states instead of N
        single-state forwards.  The exploration RNG is consumed in exactly
        the order sequential :meth:`select_action` calls would consume it —
        per request, the explore/exploit draw followed by the (tie-breaking
        or exploratory) choice draw — because the Q-network forward itself
        draws no randomness.  Stacked forwards can differ from single-state
        forwards by float rounding (~1 ulp), which only matters when two
        Q-values tie to within that noise.
        """
        states = list(states)
        n = len(states)
        if masks is None:
            masks = [None] * n
        if len(masks) != n:
            raise ValueError(f"{n} states but {len(masks)} masks")
        if isinstance(greedy, (bool, np.bool_)):
            greedy_flags = [bool(greedy)] * n
        else:
            greedy_flags = [bool(flag) for flag in greedy]
            if len(greedy_flags) != n:
                raise ValueError(f"{n} states but {len(greedy_flags)} greedy flags")
        if n == 0:
            return []
        validated = [self._validate_mask(mask) for mask in masks]
        q_batch = self.online.predict(np.stack([np.asarray(s) for s in states]))
        actions: List[int] = []
        for q, mask, is_greedy in zip(q_batch, validated, greedy_flags):
            valid = np.flatnonzero(mask)
            if valid.size == 0:
                raise ValueError("no valid actions available")
            delta = 0.0 if is_greedy else self.exploration(self.total_steps)
            if self._rng.random() < delta:
                actions.append(int(self._rng.choice(valid)))
            else:
                actions.append(self._greedy_from_q(q, mask))
        return actions

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Online-network Q-values for a single state."""
        return self.online.q_values(state)

    # -- learning ----------------------------------------------------------

    def observe(self, transition: Transition) -> Optional[float]:
        """Record a transition; learn when due.  Returns the loss if a step ran."""
        if not isinstance(transition, Transition):
            raise TypeError(f"expected Transition, got {type(transition).__name__}")
        return self.observe_step(
            transition.state,
            transition.action,
            transition.reward,
            transition.next_state,
            transition.done,
            info=transition.info,
        )

    def observe_step(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        *,
        info: Optional[Dict] = None,
    ) -> Optional[float]:
        """Record one step without a :class:`Transition` object; learn when due.

        This is the hot-path twin of :meth:`observe`: the arrays go straight
        into the array-backed replay ring.
        """
        self.replay.add_step(state, action, reward, next_state, done, info=info)
        self.total_steps += 1
        if len(self.replay) < self.config.min_replay_size:
            return None
        if self.total_steps % self.config.learn_every != 0:
            return None
        return self.learn()

    def learn(self) -> float:
        """Run one minibatch gradient update and return the loss."""
        states, actions, rewards, next_states, dones = self.replay.sample_arrays(
            self.config.batch_size
        )
        loss = self.online.train_on_batch(
            states,
            actions,
            rewards,
            next_states,
            dones,
            target_network=self.target,
            discount=self.config.discount,
        )
        self.learn_steps += 1
        if self.learn_steps % self.config.target_update_interval == 0:
            self.target.copy_weights_from(self.online)
        return loss

    def learn_fused(self, fresh: int, *, batch_size: Optional[int] = None) -> float:
        """One global-step minibatch update spanning the ``fresh`` newest transitions.

        The fused counterpart of :meth:`learn`: the minibatch always contains
        the K transitions the lockstep fleet just produced — pulled straight
        from the ring with :meth:`~repro.rl.replay.ArrayReplayBuffer.recent_indices`
        — padded to ``batch_size`` with uniform draws over the whole buffer
        (which may repeat a fresh transition; uniform replay semantics).  The
        whole minibatch is fetched with a single strided gather and trained
        with exactly one ``train_on_batch`` TD update, so the NN cost per
        global step is constant in K instead of linear.  When K exceeds
        ``batch_size`` the minibatch is simply the K fresh transitions.

        Target-network syncing follows :attr:`DQNConfig.target_update_interval`
        in learn steps, which under fused learning count global steps.

        ``batch_size`` overrides :attr:`DQNConfig.batch_size` for this update
        only — the central learner sizes its minibatch from its own
        (scale-clamped) knob without mutating the agent's configuration.
        """
        fresh = min(int(fresh), len(self.replay))
        indices = self.replay.recent_indices(fresh)
        fill = (self.config.batch_size if batch_size is None else int(batch_size)) - fresh
        if fill > 0:
            indices = np.concatenate([indices, self.replay.sample_indices(fill)])
        states, actions, rewards, next_states, dones = self.replay.gather(indices)
        loss = self.online.train_on_batch(
            states,
            actions,
            rewards,
            next_states,
            dones,
            target_network=self.target,
            discount=self.config.discount,
        )
        self.learn_steps += 1
        if self.learn_steps % self.config.target_update_interval == 0:
            self.target.copy_weights_from(self.online)
        return loss

    def train_episode(self, env: Environment, max_steps: int = 10_000) -> EpisodeStats:
        """Interact with ``env`` for one episode, learning as transitions arrive."""
        state = env.reset()
        total_reward = 0.0
        losses: List[float] = []
        episode_index = getattr(self, "_episode_counter", 0)
        steps_taken = 0
        for _ in range(check_positive_int(max_steps, "max_steps")):
            mask = env.valid_action_mask()
            action = self.select_action(state, mask=mask)
            next_state, reward, done, info = env.step(action)
            loss = self.observe_step(state, action, reward, next_state, done, info=info)
            if loss is not None:
                losses.append(loss)
            total_reward += reward
            state = next_state
            steps_taken += 1
            if done:
                break
        self._episode_counter = episode_index + 1
        return EpisodeStats(
            episode=episode_index,
            total_reward=total_reward,
            steps=steps_taken,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            final_delta=self.exploration(self.total_steps),
        )

    def train(
        self,
        env: Environment,
        episodes: int,
        *,
        max_steps_per_episode: int = 10_000,
        log_every: int = 10,
    ) -> List[EpisodeStats]:
        """Train for a fixed number of episodes and return per-episode stats."""
        episodes = check_positive_int(episodes, "episodes")
        history: List[EpisodeStats] = []
        for episode in range(episodes):
            stats = self.train_episode(env, max_steps=max_steps_per_episode)
            history.append(stats)
            if log_every and (episode + 1) % log_every == 0:
                logger.info(
                    "episode %d/%d reward=%.2f steps=%d loss=%.4f delta=%.3f",
                    episode + 1,
                    episodes,
                    stats.total_reward,
                    stats.steps,
                    stats.mean_loss,
                    stats.final_delta,
                )
        return history

    def train_episodes_vectorized(
        self,
        envs,
        episodes: int,
        *,
        max_steps_per_episode: int = 10_000,
        log_every: int = 10,
        fused: Optional[bool] = None,
    ) -> List[EpisodeStats]:
        """Train for ``episodes`` episodes across K environments in lockstep.

        Every global step selects actions for all active environments with a
        single batched forward pass of the online network, steps each
        environment, and feeds the transitions to the learner.  When an
        environment finishes an episode it is reset and keeps collecting as
        long as episodes remain to start, so K environments stay busy until
        the budget runs out.

        Two learning modes are supported:

        * **Per-transition** (``fused=False``, the default) — each of the K
          transitions triggers its own :meth:`observe_step` in environment
          order, exactly as the sequential loop would.  With a single
          environment this consumes the exploration/replay RNG stream in
          exactly the order of :meth:`train`, so K=1 reproduces the
          sequential path bit for bit.
        * **Fused global-step** (``fused=True``) — the K transitions of the
          step are written into the replay ring with one batched insertion
          (:meth:`~repro.rl.replay.ArrayReplayBuffer.add_batch`), and at most
          one minibatch update runs per global step (:meth:`learn_fused`),
          with the ``learn_every`` cadence and target-network syncs counting
          global steps.  The exploration schedule is evaluated once per
          global step (one δ shared by all K rows) but its clock,
          ``total_steps``, still counts transitions, so a decay horizon
          sized in environment steps means the same thing at every K and in
          both learning modes.
          This cuts the NN update cost per global step from K minibatches to
          one, which dominates wall-clock at large K; it is *not* bit-exact
          with the per-transition mode (fewer, differently-composed
          updates), only statistically equivalent.

        Parameters
        ----------
        envs:
            A :class:`~repro.rl.vector_env.VectorEnv` or a sequence of
            environments (wrapped automatically).  The environments may
            differ in seeds, datasets or quality requirements as long as they
            share the action space and state shape.
        episodes:
            Total number of episodes to run across all environments.
        max_steps_per_episode:
            Per-episode step cap, as in :meth:`train_episode`.
        log_every:
            Episodes between progress log lines (0 disables logging).
        fused:
            Learning-mode override; ``None`` defers to
            :attr:`DQNConfig.fused_learning`.
        """
        episodes = check_positive_int(episodes, "episodes")
        max_steps_per_episode = check_positive_int(max_steps_per_episode, "max_steps_per_episode")
        vec = envs if isinstance(envs, VectorEnv) else VectorEnv(envs)
        if fused is None:
            fused = self.config.fused_learning
        if vec.n_actions != self.n_actions:
            raise ValueError(
                f"environments have {vec.n_actions} actions but the agent "
                f"was built for {self.n_actions}"
            )

        n_envs = min(vec.n_envs, episodes)
        states: List[Optional[np.ndarray]] = [None] * vec.n_envs
        rewards = [0.0] * vec.n_envs
        steps = [0] * vec.n_envs
        losses: List[List[float]] = [[] for _ in range(vec.n_envs)]
        active: List[int] = []
        episodes_started = 0
        for index in range(n_envs):
            states[index] = vec.reset_one(index)
            active.append(index)
            episodes_started += 1

        history: List[EpisodeStats] = []
        while active:
            # Resolve the δ-greedy draws first: exploring rows never need a
            # forward pass, so the batched prediction below covers only the
            # exploiting rows.  The forward consumes no randomness, so with a
            # single environment the RNG stream is identical to the
            # sequential loop's draw-then-forward order.
            masks = vec.valid_action_masks(active)
            actions: List[Optional[int]] = [None] * len(active)
            exploit_rows: List[int] = []
            for row, index in enumerate(active):
                valid = np.flatnonzero(masks[row])
                if valid.size == 0:
                    raise ValueError("no valid actions available")
                delta = self.exploration(self.total_steps)
                if self._rng.random() < delta:
                    actions[row] = int(self._rng.choice(valid))
                else:
                    exploit_rows.append(row)
            if exploit_rows:
                q_batch = self.online.predict(
                    np.stack([states[active[row]] for row in exploit_rows])
                )
                for position, row in enumerate(exploit_rows):
                    actions[row] = self._greedy_from_q(q_batch[position], masks[row])

            results = vec.step_many(list(zip(active, actions)))

            step_loss: Optional[float] = None
            if fused:
                # One batched ring insertion for the whole lockstep step,
                # then at most one minibatch update spanning all of it.
                self.replay.add_batch(
                    np.stack([states[index] for index in active]),
                    np.asarray(actions, dtype=int),
                    np.array([result[1] for result in results], dtype=float),
                    np.stack([result[0] for result in results]),
                    np.array([result[2] for result in results], dtype=bool),
                    infos=[result[3] for result in results],
                )
                self.total_steps += len(active)
                self.global_steps += 1
                if (
                    len(self.replay) >= self.config.min_replay_size
                    and self.global_steps % self.config.learn_every == 0
                ):
                    step_loss = self.learn_fused(len(active))

            finished: List[int] = []
            for row, index in enumerate(active):
                next_state, reward, done, info = results[row]
                if fused:
                    loss = step_loss
                else:
                    loss = self.observe_step(
                        states[index], actions[row], reward, next_state, done, info=info
                    )
                if loss is not None:
                    losses[index].append(loss)
                rewards[index] += reward
                steps[index] += 1
                states[index] = next_state
                if done or steps[index] >= max_steps_per_episode:
                    episode_index = getattr(self, "_episode_counter", 0)
                    self._episode_counter = episode_index + 1
                    extra: Dict[str, float] = {"env_index": float(index)}
                    episode_cycles = getattr(vec.envs[index], "episode_cycles", None)
                    if episode_cycles is not None:
                        extra["episode_cycles"] = float(episode_cycles)
                    stats = EpisodeStats(
                        episode=episode_index,
                        total_reward=rewards[index],
                        steps=steps[index],
                        mean_loss=float(np.mean(losses[index])) if losses[index] else float("nan"),
                        final_delta=self.exploration(self.total_steps),
                        extra=extra,
                    )
                    history.append(stats)
                    if log_every and len(history) % log_every == 0:
                        logger.info(
                            "episode %d/%d (env %d) reward=%.2f steps=%d loss=%.4f delta=%.3f",
                            len(history),
                            episodes,
                            index,
                            stats.total_reward,
                            stats.steps,
                            stats.mean_loss,
                            stats.final_delta,
                        )
                    rewards[index] = 0.0
                    steps[index] = 0
                    losses[index] = []
                    if episodes_started < episodes:
                        states[index] = vec.reset_one(index)
                        episodes_started += 1
                    else:
                        finished.append(index)
            for index in finished:
                active.remove(index)
        return history

    # -- weights -----------------------------------------------------------

    def get_weights(self):
        """Online-network weights (used by transfer learning)."""
        return self.online.get_weights()

    def set_weights(self, weights) -> None:
        """Load weights into both the online and the target network."""
        self.online.set_weights(weights)
        self.target.set_weights(weights)

    def sync_target(self) -> None:
        """Force-copy online weights into the target network."""
        self.target.copy_weights_from(self.online)

    # -- helpers -----------------------------------------------------------

    def _validate_mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        if mask is None:
            return np.ones(self.n_actions, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_actions,):
            raise ValueError(
                f"mask shape {mask.shape} does not match n_actions {self.n_actions}"
            )
        return mask
