"""Deep Q-learning with experience replay and fixed Q-targets (paper §4.3, Algorithm 2).

:class:`DQNAgent` is architecture-agnostic: it accepts any
:class:`~repro.nn.network.QNetworkBase`, so the same loop drives both the
feed-forward DQN ablation and the paper's recurrent DRQN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nn.network import QNetworkBase
from repro.rl.environment import Environment, Transition
from repro.rl.replay import ReplayBuffer
from repro.rl.schedules import LinearDecaySchedule, Schedule
from repro.utils.logging import get_logger
from repro.utils.seeding import RngLike, as_rng
from repro.utils.validation import check_positive_int, check_probability

logger = get_logger(__name__)


@dataclass
class DQNConfig:
    """Hyper-parameters of the deep Q-learning loop.

    Attributes
    ----------
    discount:
        γ used in the TD target.
    batch_size:
        Minibatch size sampled from the replay buffer per learning step.
    replay_capacity:
        Capacity of the replay buffer.
    min_replay_size:
        Number of transitions that must be collected before learning starts.
    target_update_interval:
        Number of learning steps between copies of the online network into
        the fixed-target network (the paper's ``REPLACE_ITER``).
    learn_every:
        Environment steps between gradient updates.
    """

    discount: float = 0.95
    batch_size: int = 32
    replay_capacity: int = 10_000
    min_replay_size: int = 200
    target_update_interval: int = 100
    learn_every: int = 1

    def __post_init__(self) -> None:
        self.discount = check_probability(self.discount, "discount")
        for name in (
            "batch_size",
            "replay_capacity",
            "min_replay_size",
            "target_update_interval",
            "learn_every",
        ):
            setattr(self, name, check_positive_int(getattr(self, name), name))
        if self.min_replay_size < self.batch_size:
            raise ValueError(
                "min_replay_size must be at least batch_size "
                f"({self.min_replay_size} < {self.batch_size})"
            )
        if self.replay_capacity < self.min_replay_size:
            raise ValueError(
                "replay_capacity must be at least min_replay_size "
                f"({self.replay_capacity} < {self.min_replay_size})"
            )


@dataclass
class EpisodeStats:
    """Summary statistics for one training episode."""

    episode: int
    total_reward: float
    steps: int
    mean_loss: float
    final_delta: float
    extra: Dict[str, float] = field(default_factory=dict)


class DQNAgent:
    """Deep Q-learning agent with experience replay and fixed Q-targets.

    Parameters
    ----------
    network:
        The online Q-network; a deep copy of it becomes the target network.
    config:
        Loop hyper-parameters.
    exploration:
        δ schedule; defaults to a linear decay from 1.0 to 0.05.
    seed:
        Seed for exploration randomness and replay sampling.
    """

    def __init__(
        self,
        network: QNetworkBase,
        config: Optional[DQNConfig] = None,
        *,
        exploration: Optional[Schedule] = None,
        seed: RngLike = None,
    ) -> None:
        self.online = network
        self.target = network.clone()
        self.config = config or DQNConfig()
        self.exploration = exploration or LinearDecaySchedule(1.0, 0.05, 5_000)
        self._rng = as_rng(seed)
        self.replay = ReplayBuffer(self.config.replay_capacity, seed=self._rng)
        self.total_steps = 0
        self.learn_steps = 0

    @property
    def n_actions(self) -> int:
        return self.online.n_actions

    # -- acting ------------------------------------------------------------

    def select_action(
        self,
        state: np.ndarray,
        *,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        """δ-greedy action selection restricted to valid actions."""
        mask = self._validate_mask(mask)
        valid = np.flatnonzero(mask)
        if valid.size == 0:
            raise ValueError("no valid actions available")
        delta = 0.0 if greedy else self.exploration(self.total_steps)
        if self._rng.random() < delta:
            return int(self._rng.choice(valid))
        q = self.online.q_values(state)
        masked = np.where(mask, q, -np.inf)
        best = float(masked.max())
        candidates = np.flatnonzero(masked == best)
        return int(self._rng.choice(candidates))

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Online-network Q-values for a single state."""
        return self.online.q_values(state)

    # -- learning ----------------------------------------------------------

    def observe(self, transition: Transition) -> Optional[float]:
        """Record a transition; learn when due.  Returns the loss if a step ran."""
        self.replay.add(transition)
        self.total_steps += 1
        if len(self.replay) < self.config.min_replay_size:
            return None
        if self.total_steps % self.config.learn_every != 0:
            return None
        return self.learn()

    def learn(self) -> float:
        """Run one minibatch gradient update and return the loss."""
        states, actions, rewards, next_states, dones = self.replay.sample_arrays(
            self.config.batch_size
        )
        next_q = self.target.predict(next_states)
        max_next = next_q.max(axis=1)
        targets = rewards + self.config.discount * max_next * (~dones)
        loss = self.online.train_step(states, actions, targets)
        self.learn_steps += 1
        if self.learn_steps % self.config.target_update_interval == 0:
            self.target.copy_weights_from(self.online)
        return loss

    def train_episode(self, env: Environment, max_steps: int = 10_000) -> EpisodeStats:
        """Interact with ``env`` for one episode, learning as transitions arrive."""
        state = env.reset()
        total_reward = 0.0
        losses: List[float] = []
        episode_index = getattr(self, "_episode_counter", 0)
        steps_taken = 0
        for _ in range(check_positive_int(max_steps, "max_steps")):
            mask = env.valid_action_mask()
            action = self.select_action(state, mask=mask)
            next_state, reward, done, info = env.step(action)
            loss = self.observe(
                Transition(state, action, reward, next_state, done, info=dict(info))
            )
            if loss is not None:
                losses.append(loss)
            total_reward += reward
            state = next_state
            steps_taken += 1
            if done:
                break
        self._episode_counter = episode_index + 1
        return EpisodeStats(
            episode=episode_index,
            total_reward=total_reward,
            steps=steps_taken,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            final_delta=self.exploration(self.total_steps),
        )

    def train(
        self,
        env: Environment,
        episodes: int,
        *,
        max_steps_per_episode: int = 10_000,
        log_every: int = 10,
    ) -> List[EpisodeStats]:
        """Train for a fixed number of episodes and return per-episode stats."""
        episodes = check_positive_int(episodes, "episodes")
        history: List[EpisodeStats] = []
        for episode in range(episodes):
            stats = self.train_episode(env, max_steps=max_steps_per_episode)
            history.append(stats)
            if log_every and (episode + 1) % log_every == 0:
                logger.info(
                    "episode %d/%d reward=%.2f steps=%d loss=%.4f delta=%.3f",
                    episode + 1,
                    episodes,
                    stats.total_reward,
                    stats.steps,
                    stats.mean_loss,
                    stats.final_delta,
                )
        return history

    # -- weights -----------------------------------------------------------

    def get_weights(self):
        """Online-network weights (used by transfer learning)."""
        return self.online.get_weights()

    def set_weights(self, weights) -> None:
        """Load weights into both the online and the target network."""
        self.online.set_weights(weights)
        self.target.set_weights(weights)

    def sync_target(self) -> None:
        """Force-copy online weights into the target network."""
        self.target.copy_weights_from(self.online)

    # -- helpers -----------------------------------------------------------

    def _validate_mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        if mask is None:
            return np.ones(self.n_actions, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_actions,):
            raise ValueError(
                f"mask shape {mask.shape} does not match n_actions {self.n_actions}"
            )
        return mask
