"""Tabular Q-learning (paper §4.2, Algorithm 1).

The Q-function is represented as a table indexed by (state, action).  States
are arbitrary hashable keys; for DR-Cell the key is the byte representation
of the binary state window, so the same learner also works for other small
discrete problems in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.rl.environment import Environment
from repro.rl.schedules import ConstantSchedule, Schedule
from repro.utils.seeding import RngLike, as_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass
class TabularQLearningConfig:
    """Hyper-parameters for :class:`TabularQLearner`.

    Attributes
    ----------
    learning_rate:
        α in the update ``Q ← (1−α)·Q + α·(R + γ·V(S′))``.
    discount:
        γ, the future-reward discount.
    initial_q:
        Value used for unseen (state, action) pairs.
    """

    learning_rate: float = 0.1
    discount: float = 0.95
    initial_q: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {self.learning_rate}")
        self.discount = check_probability(self.discount, "discount")


def state_key(state: np.ndarray) -> bytes:
    """Hashable key for a binary/continuous NumPy state."""
    return np.ascontiguousarray(np.asarray(state, dtype=float)).tobytes()


class TabularQLearner:
    """Q-table learner with δ-greedy exploration and action masking.

    Parameters
    ----------
    n_actions:
        Size of the discrete action set.
    config:
        Learning hyper-parameters.
    exploration:
        Schedule for the exploration probability δ; a constant 0.1 by default.
    seed:
        Seed or generator for exploration randomness.
    """

    def __init__(
        self,
        n_actions: int,
        config: Optional[TabularQLearningConfig] = None,
        *,
        exploration: Optional[Schedule] = None,
        seed: RngLike = None,
    ) -> None:
        self.n_actions = check_positive_int(n_actions, "n_actions")
        self.config = config or TabularQLearningConfig()
        self.exploration = exploration or ConstantSchedule(0.1)
        self._rng = as_rng(seed)
        self._table: Dict[Hashable, np.ndarray] = {}
        self.steps = 0

    # -- Q-table access ----------------------------------------------------

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Return (a copy of) the Q-value row for ``state``."""
        return self._row(state).copy()

    def _row(self, state: np.ndarray) -> np.ndarray:
        key = state_key(state)
        row = self._table.get(key)
        if row is None:
            row = np.full(self.n_actions, self.config.initial_q, dtype=float)
            self._table[key] = row
        return row

    @property
    def n_states_seen(self) -> int:
        """Number of distinct states with a Q-table row."""
        return len(self._table)

    # -- acting ------------------------------------------------------------

    def select_action(
        self,
        state: np.ndarray,
        *,
        mask: Optional[np.ndarray] = None,
        greedy: bool = False,
    ) -> int:
        """δ-greedy action selection restricted to ``mask``-valid actions."""
        mask = self._validate_mask(mask)
        delta = 0.0 if greedy else self.exploration(self.steps)
        valid = np.flatnonzero(mask)
        if valid.size == 0:
            raise ValueError("no valid actions available")
        if self._rng.random() < delta:
            return int(self._rng.choice(valid))
        row = self._row(state)
        masked = np.where(mask, row, -np.inf)
        best = float(masked.max())
        # Break ties randomly so early training does not lock onto action 0.
        candidates = np.flatnonzero(masked == best)
        return int(self._rng.choice(candidates))

    # -- learning ----------------------------------------------------------

    def update(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool = False,
        *,
        next_mask: Optional[np.ndarray] = None,
    ) -> float:
        """Apply the tabular update (paper Eq. 2–3) and return the new Q[S, A]."""
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action {action} out of range [0, {self.n_actions})")
        row = self._row(state)
        if done:
            future = 0.0
        else:
            next_row = self._row(next_state)
            next_mask = self._validate_mask(next_mask)
            masked = np.where(next_mask, next_row, -np.inf)
            future = float(masked.max())
            if not np.isfinite(future):
                future = 0.0
        alpha = self.config.learning_rate
        target = reward + self.config.discount * future
        row[action] = (1.0 - alpha) * row[action] + alpha * target
        self.steps += 1
        return float(row[action])

    def train_episode(self, env: Environment, max_steps: int = 10_000) -> Tuple[float, int]:
        """Run one episode of interaction + learning on ``env``.

        Returns
        -------
        tuple
            ``(total_reward, steps_taken)``.
        """
        state = env.reset()
        total_reward = 0.0
        for step in range(check_positive_int(max_steps, "max_steps")):
            mask = env.valid_action_mask()
            action = self.select_action(state, mask=mask)
            next_state, reward, done, _ = env.step(action)
            self.update(
                state,
                action,
                reward,
                next_state,
                done,
                next_mask=env.valid_action_mask(),
            )
            total_reward += reward
            state = next_state
            if done:
                return total_reward, step + 1
        return total_reward, max_steps

    # -- helpers -----------------------------------------------------------

    def _validate_mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        if mask is None:
            return np.ones(self.n_actions, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_actions,):
            raise ValueError(
                f"mask shape {mask.shape} does not match n_actions {self.n_actions}"
            )
        return mask
