"""Minimal episodic environment protocol and the transition record.

The protocol is deliberately close to the classic gym API but trimmed to
what the cell-selection problem needs: discrete actions, an optional mask of
valid actions (cells already sensed this cycle must not be selected again),
and NumPy-array observations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Transition:
    """A single agent-environment interaction ⟨S, A, R, S′⟩ plus termination flag.

    ``done`` marks the end of an *episode* (e.g. the end of the sensing data
    used for training), not the end of a cycle; cycle boundaries are part of
    the state itself in DR-Cell.
    """

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool
    info: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "state", np.asarray(self.state, dtype=float))
        object.__setattr__(self, "next_state", np.asarray(self.next_state, dtype=float))
        if self.state.shape != self.next_state.shape:
            raise ValueError(
                f"state shape {self.state.shape} != next_state shape {self.next_state.shape}"
            )


class Environment(abc.ABC):
    """Abstract episodic environment with discrete actions and action masking."""

    @property
    @abc.abstractmethod
    def n_actions(self) -> int:
        """Number of discrete actions."""

    @abc.abstractmethod
    def reset(self) -> np.ndarray:
        """Start a new episode and return the initial observation."""

    @abc.abstractmethod
    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        """Apply ``action``; return ``(observation, reward, done, info)``."""

    def valid_action_mask(self) -> np.ndarray:
        """Boolean mask of currently valid actions (default: all valid).

        The paper keeps the action set fixed across states but assigns zero
        probability to cells already selected in the current cycle; agents
        respect this mask both when exploring and when exploiting.
        """
        return np.ones(self.n_actions, dtype=bool)

    def render(self) -> Optional[str]:
        """Optional human-readable rendering of the current state."""
        return None
