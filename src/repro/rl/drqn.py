"""Convenience constructors for the paper's DRQN agent and the DQN ablation.

These wire a Q-network architecture, an exploration schedule and the
:class:`~repro.rl.dqn.DQNAgent` loop together with sensible defaults so that
callers (the DR-Cell core and the experiment harness) only specify the
problem size and a seed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.nn.network import FeedForwardQNetwork, RecurrentQNetwork
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.schedules import LinearDecaySchedule, Schedule
from repro.utils.seeding import RngLike, derive_rng


def build_drqn_agent(
    n_cells: int,
    window: int,
    *,
    lstm_hidden: int = 64,
    dense_hidden: Sequence[int] = (64,),
    learning_rate: float = 1e-3,
    config: Optional[DQNConfig] = None,
    exploration: Optional[Schedule] = None,
    seed: RngLike = None,
) -> DQNAgent:
    """Build the paper's Deep Recurrent Q-Network agent.

    The network is an LSTM over the ``window`` most recent cell-selection
    vectors followed by dense layers producing one Q-value per cell.
    """
    network = RecurrentQNetwork(
        n_cells,
        window,
        lstm_hidden=lstm_hidden,
        dense_hidden=dense_hidden,
        learning_rate=learning_rate,
        seed=derive_rng(seed, 0),
    )
    return DQNAgent(
        network,
        config=config or DQNConfig(),
        exploration=exploration or LinearDecaySchedule(1.0, 0.05, 5_000),
        seed=derive_rng(seed, 1),
    )


def build_dqn_agent(
    n_cells: int,
    window: int,
    *,
    hidden_dims: Sequence[int] = (64, 64),
    learning_rate: float = 1e-3,
    config: Optional[DQNConfig] = None,
    exploration: Optional[Schedule] = None,
    seed: RngLike = None,
) -> DQNAgent:
    """Build the dense (non-recurrent) DQN used as an architecture ablation."""
    network = FeedForwardQNetwork(
        n_cells,
        window,
        hidden_dims=hidden_dims,
        learning_rate=learning_rate,
        seed=derive_rng(seed, 0),
    )
    return DQNAgent(
        network,
        config=config or DQNConfig(),
        exploration=exploration or LinearDecaySchedule(1.0, 0.05, 5_000),
        seed=derive_rng(seed, 1),
    )
