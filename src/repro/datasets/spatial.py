"""Spatially correlated field generation.

Environmental quantities (temperature, humidity, PM2.5) vary smoothly over
space: nearby cells read similar values.  The generators here sample smooth
spatial patterns from a Gaussian process with a squared-exponential kernel
over the cell-centre coordinates; the dataset builders combine a few such
patterns with temporal loadings to obtain a low-rank, spatially smooth
ground-truth matrix.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.seeding import RngLike, as_rng
from repro.utils.validation import check_positive, check_positive_int


def grid_coordinates(
    n_rows: int,
    n_cols: int,
    cell_width: float,
    cell_height: float,
) -> np.ndarray:
    """Cell-centre coordinates for an ``n_rows × n_cols`` grid, row-major order.

    Returns an ``(n_rows·n_cols, 2)`` array of (x, y) positions in the same
    units as the cell dimensions (metres in the built-in datasets).
    """
    check_positive_int(n_rows, "n_rows")
    check_positive_int(n_cols, "n_cols")
    check_positive(cell_width, "cell_width")
    check_positive(cell_height, "cell_height")
    xs = (np.arange(n_cols) + 0.5) * cell_width
    ys = (np.arange(n_rows) + 0.5) * cell_height
    grid_x, grid_y = np.meshgrid(xs, ys)
    return np.column_stack([grid_x.ravel(), grid_y.ravel()])


def squared_exponential_kernel(
    coordinates: np.ndarray,
    length_scale: float,
    variance: float = 1.0,
    jitter: float = 1e-8,
) -> np.ndarray:
    """Squared-exponential (RBF) covariance matrix over cell coordinates.

    ``K[i, j] = variance · exp(−‖x_i − x_j‖² / (2·length_scale²))`` with a
    small diagonal jitter for numerical stability.
    """
    coordinates = np.asarray(coordinates, dtype=float)
    if coordinates.ndim != 2:
        raise ValueError(f"coordinates must be 2-D, got shape {coordinates.shape}")
    check_positive(length_scale, "length_scale")
    check_positive(variance, "variance")
    deltas = coordinates[:, None, :] - coordinates[None, :, :]
    squared_distance = (deltas * deltas).sum(axis=2)
    kernel = variance * np.exp(-0.5 * squared_distance / (length_scale**2))
    kernel[np.diag_indices_from(kernel)] += jitter
    return kernel


def sample_spatial_field(
    coordinates: np.ndarray,
    length_scale: float,
    n_samples: int = 1,
    variance: float = 1.0,
    *,
    seed: RngLike = None,
) -> np.ndarray:
    """Draw ``n_samples`` smooth spatial patterns from the GP prior.

    Returns an ``(n_samples, n_cells)`` array; each row is one zero-mean
    pattern whose spatial correlation length is ``length_scale``.
    """
    check_positive_int(n_samples, "n_samples")
    rng = as_rng(seed)
    kernel = squared_exponential_kernel(coordinates, length_scale, variance)
    # Cholesky of the jittered kernel; fall back to eigendecomposition if the
    # jitter was not enough (can happen for nearly duplicated coordinates).
    try:
        chol = np.linalg.cholesky(kernel)
    except np.linalg.LinAlgError:
        eigenvalues, eigenvectors = np.linalg.eigh(kernel)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        chol = eigenvectors * np.sqrt(eigenvalues)
    draws = rng.standard_normal((n_samples, coordinates.shape[0]))
    return draws @ chol.T


def select_valid_cells(
    n_total: int,
    n_valid: int,
    *,
    seed: RngLike = None,
) -> np.ndarray:
    """Choose which grid cells carry valid sensors (Sensor-Scope has 57 of 100).

    Returns the sorted indices of the valid cells.
    """
    check_positive_int(n_total, "n_total")
    check_positive_int(n_valid, "n_valid")
    if n_valid > n_total:
        raise ValueError(f"cannot select {n_valid} valid cells out of {n_total}")
    rng = as_rng(seed)
    chosen = rng.choice(n_total, size=n_valid, replace=False)
    return np.sort(chosen)
