"""Spatially correlated field generation.

Environmental quantities (temperature, humidity, PM2.5) vary smoothly over
space: nearby cells read similar values.  The generators here sample smooth
spatial patterns from a Gaussian process with a squared-exponential kernel
over the cell-centre coordinates; the dataset builders combine a few such
patterns with temporal loadings to obtain a low-rank, spatially smooth
ground-truth matrix.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.api.registry import DATASETS
from repro.utils.seeding import RngLike, as_rng, derive_rng
from repro.utils.validation import check_positive, check_positive_int


def grid_coordinates(
    n_rows: int,
    n_cols: int,
    cell_width: float,
    cell_height: float,
) -> np.ndarray:
    """Cell-centre coordinates for an ``n_rows × n_cols`` grid, row-major order.

    Returns an ``(n_rows·n_cols, 2)`` array of (x, y) positions in the same
    units as the cell dimensions (metres in the built-in datasets).
    """
    check_positive_int(n_rows, "n_rows")
    check_positive_int(n_cols, "n_cols")
    check_positive(cell_width, "cell_width")
    check_positive(cell_height, "cell_height")
    xs = (np.arange(n_cols) + 0.5) * cell_width
    ys = (np.arange(n_rows) + 0.5) * cell_height
    grid_x, grid_y = np.meshgrid(xs, ys)
    return np.column_stack([grid_x.ravel(), grid_y.ravel()])


def squared_exponential_kernel(
    coordinates: np.ndarray,
    length_scale: float,
    variance: float = 1.0,
    jitter: float = 1e-8,
) -> np.ndarray:
    """Squared-exponential (RBF) covariance matrix over cell coordinates.

    ``K[i, j] = variance · exp(−‖x_i − x_j‖² / (2·length_scale²))`` with a
    small diagonal jitter for numerical stability.
    """
    coordinates = np.asarray(coordinates, dtype=float)
    if coordinates.ndim != 2:
        raise ValueError(f"coordinates must be 2-D, got shape {coordinates.shape}")
    check_positive(length_scale, "length_scale")
    check_positive(variance, "variance")
    deltas = coordinates[:, None, :] - coordinates[None, :, :]
    squared_distance = (deltas * deltas).sum(axis=2)
    kernel = variance * np.exp(-0.5 * squared_distance / (length_scale**2))
    kernel[np.diag_indices_from(kernel)] += jitter
    return kernel


def sample_spatial_field(
    coordinates: np.ndarray,
    length_scale: float,
    n_samples: int = 1,
    variance: float = 1.0,
    *,
    seed: RngLike = None,
) -> np.ndarray:
    """Draw ``n_samples`` smooth spatial patterns from the GP prior.

    Returns an ``(n_samples, n_cells)`` array; each row is one zero-mean
    pattern whose spatial correlation length is ``length_scale``.
    """
    check_positive_int(n_samples, "n_samples")
    rng = as_rng(seed)
    kernel = squared_exponential_kernel(coordinates, length_scale, variance)
    # Cholesky of the jittered kernel; fall back to eigendecomposition if the
    # jitter was not enough (can happen for nearly duplicated coordinates).
    try:
        chol = np.linalg.cholesky(kernel)
    except np.linalg.LinAlgError:
        eigenvalues, eigenvectors = np.linalg.eigh(kernel)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        chol = eigenvectors * np.sqrt(eigenvalues)
    draws = rng.standard_normal((n_samples, coordinates.shape[0]))
    return draws @ chol.T


def select_valid_cells(
    n_total: int,
    n_valid: int,
    *,
    seed: RngLike = None,
) -> np.ndarray:
    """Choose which grid cells carry valid sensors (Sensor-Scope has 57 of 100).

    Returns the sorted indices of the valid cells.
    """
    check_positive_int(n_total, "n_total")
    check_positive_int(n_valid, "n_valid")
    if n_valid > n_total:
        raise ValueError(f"cannot select {n_valid} valid cells out of {n_total}")
    rng = as_rng(seed)
    chosen = rng.choice(n_total, size=n_valid, replace=False)
    return np.sort(chosen)


@DATASETS.register("spatial")
def generate_spatial_dataset(
    n_cells: int = 16,
    n_cycles: int = 48,
    cycle_length_hours: float = 1.0,
    length_scale: float = 75.0,
    n_patterns: int = 3,
    loading_correlation: float = 0.85,
    noise_std: float = 0.3,
    base_level: float = 20.0,
    *,
    seed: RngLike = None,
):
    """A purely spatially-structured synthetic dataset.

    A few smooth GP patterns over a square grid, each modulated by an AR(1)
    temporal loading, plus measurement noise — a low-rank, spatially smooth
    field with no shared diurnal component.  Useful as a scenario workload
    where spatial inference (KNN, spatial mean) should dominate.
    """
    from repro.datasets.base import SensingDataset
    from repro.datasets.temporal import ar1_series

    check_positive_int(n_cells, "n_cells")
    check_positive_int(n_cycles, "n_cycles")
    check_positive(cycle_length_hours, "cycle_length_hours")
    check_positive_int(n_patterns, "n_patterns")
    cell_width = 50.0
    rows = int(np.ceil(np.sqrt(n_cells)))
    coordinates = grid_coordinates(rows, rows, cell_width, cell_width)[:n_cells]
    patterns = sample_spatial_field(
        coordinates, length_scale, n_samples=n_patterns, seed=derive_rng(seed, 0)
    )
    loading_rng = derive_rng(seed, 1)
    loadings = np.stack(
        [
            ar1_series(n_cycles, correlation=loading_correlation, seed=loading_rng)
            for _ in range(n_patterns)
        ]
    )
    noise = derive_rng(seed, 2).normal(scale=noise_std, size=(n_cells, n_cycles))
    data = base_level + patterns.T @ loadings + noise
    return SensingDataset(
        name="synthetic-spatial",
        data=data,
        coordinates=coordinates,
        cycle_length_hours=float(cycle_length_hours),
        metric="mae",
        units="",
        cell_size=f"{cell_width:.0f}m x {cell_width:.0f}m",
        city="synthetic",
        extra={"length_scale": float(length_scale)},
    )
