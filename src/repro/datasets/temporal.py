"""Temporally correlated signal generation.

Environmental readings carry two kinds of temporal structure that matter for
cell selection: a shared periodic (diurnal) component and an autoregressive
residual that makes consecutive cycles similar.  Both are provided here as
small composable generators.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import DATASETS
from repro.utils.seeding import RngLike, as_rng, derive_rng
from repro.utils.validation import check_positive, check_positive_int


def diurnal_profile(
    n_cycles: int,
    cycles_per_day: int,
    amplitude: float = 1.0,
    peak_hour: float = 15.0,
    *,
    harmonics: int = 1,
) -> np.ndarray:
    """A smooth daily cycle sampled at the sensing cadence.

    Parameters
    ----------
    n_cycles:
        Number of sensing cycles to generate.
    cycles_per_day:
        Sensing cycles per 24 hours (48 for half-hour cycles, 24 for hourly).
    amplitude:
        Peak-to-mean amplitude of the fundamental harmonic.
    peak_hour:
        Hour of day (0–24) at which the fundamental peaks (mid-afternoon for
        temperature).
    harmonics:
        Number of harmonics; higher harmonics get geometrically smaller
        amplitudes, giving a slightly sharpened but still smooth profile.
    """
    check_positive_int(n_cycles, "n_cycles")
    check_positive_int(cycles_per_day, "cycles_per_day")
    check_positive_int(harmonics, "harmonics")
    hours = np.arange(n_cycles) * (24.0 / cycles_per_day)
    profile = np.zeros(n_cycles, dtype=float)
    for harmonic in range(1, harmonics + 1):
        weight = amplitude / (2 ** (harmonic - 1))
        phase = 2.0 * np.pi * harmonic * (hours - peak_hour) / 24.0
        profile += weight * np.cos(phase)
    return profile


def ar1_series(
    n_cycles: int,
    correlation: float = 0.9,
    innovation_std: float = 1.0,
    *,
    seed: RngLike = None,
) -> np.ndarray:
    """A stationary AR(1) series ``x_t = ρ·x_{t−1} + η_t``.

    The series is initialised from its stationary distribution so that the
    beginning of the campaign is statistically indistinguishable from the
    rest.
    """
    check_positive_int(n_cycles, "n_cycles")
    if not -1.0 < correlation < 1.0:
        raise ValueError(f"correlation must lie in (-1, 1), got {correlation}")
    check_positive(innovation_std, "innovation_std")
    rng = as_rng(seed)
    stationary_std = innovation_std / np.sqrt(1.0 - correlation**2)
    series = np.empty(n_cycles, dtype=float)
    series[0] = rng.normal(scale=stationary_std)
    noise = rng.normal(scale=innovation_std, size=n_cycles)
    for t in range(1, n_cycles):
        series[t] = correlation * series[t - 1] + noise[t]
    return series


def smooth_episode_series(
    n_cycles: int,
    episode_length: float,
    amplitude: float = 1.0,
    *,
    seed: RngLike = None,
) -> np.ndarray:
    """Slowly varying "episode" signal used for pollution events.

    Implemented as a heavily smoothed random walk (moving average of white
    noise with window ≈ ``episode_length`` cycles), normalised to unit
    standard deviation and scaled by ``amplitude``.  PM2.5 exhibits regional
    multi-hour episodes that raise the whole city's readings; this component
    reproduces that behaviour.
    """
    check_positive_int(n_cycles, "n_cycles")
    check_positive(episode_length, "episode_length")
    check_positive(amplitude, "amplitude")
    rng = as_rng(seed)
    window = max(2, int(round(episode_length)))
    noise = rng.standard_normal(n_cycles + window)
    kernel = np.ones(window) / window
    smoothed = np.convolve(noise, kernel, mode="valid")[:n_cycles]
    std = smoothed.std()
    if std < 1e-12:
        return np.zeros(n_cycles)
    return amplitude * (smoothed - smoothed.mean()) / std


@DATASETS.register("temporal")
def generate_temporal_dataset(
    n_cells: int = 16,
    n_cycles: int = 48,
    cycle_length_hours: float = 1.0,
    correlation: float = 0.9,
    diurnal_amplitude: float = 2.0,
    residual_std: float = 0.6,
    noise_std: float = 0.2,
    base_level: float = 20.0,
    *,
    seed: RngLike = None,
):
    """A purely temporally-structured synthetic dataset.

    Every cell shares one diurnal profile and a city-wide AR(1) trend; the
    only per-cell structure is a small AR(1) residual plus measurement
    noise.  Useful as a scenario workload where temporal inference should
    dominate (the spatial counterpart is
    :func:`repro.datasets.spatial.generate_spatial_dataset`).
    """
    from repro.datasets.base import SensingDataset

    check_positive_int(n_cells, "n_cells")
    check_positive_int(n_cycles, "n_cycles")
    check_positive(cycle_length_hours, "cycle_length_hours")
    cycles_per_day = max(1, int(round(24.0 / cycle_length_hours)))
    shared = diurnal_profile(
        n_cycles, cycles_per_day, amplitude=diurnal_amplitude
    ) + ar1_series(n_cycles, correlation=correlation, seed=derive_rng(seed, 0))
    residual_rng = derive_rng(seed, 1)
    residuals = np.stack(
        [
            ar1_series(
                n_cycles,
                correlation=correlation,
                innovation_std=residual_std,
                seed=residual_rng,
            )
            for _ in range(n_cells)
        ]
    )
    noise = derive_rng(seed, 2).normal(scale=noise_std, size=(n_cells, n_cycles))
    data = base_level + shared[None, :] + residuals + noise
    coordinates = np.column_stack(
        [50.0 * np.arange(n_cells, dtype=float), np.zeros(n_cells)]
    )
    return SensingDataset(
        name="synthetic-temporal",
        data=data,
        coordinates=coordinates,
        cycle_length_hours=float(cycle_length_hours),
        metric="mae",
        units="",
        cell_size="50m line",
        city="synthetic",
        extra={"correlation": float(correlation)},
    )
