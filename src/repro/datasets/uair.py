"""Synthetic U-Air-scale PM2.5 dataset.

The real U-Air dataset contains hourly PM2.5 readings for 36 one-square-
kilometre cells of Beijing over 11 days, with heavy-tailed values
(79.11 ± 81.21 µg/m³, paper Table 1) and the error metric is classification
error over six AQI categories.

The synthetic substitute models log-PM2.5 as

    log PM2.5[i, t] = baseline + episode(t) + spatial(i) + diurnal(t)
                      + residual(i, t) + noise

where ``episode`` is a slowly varying city-wide pollution-episode signal
(the dominant source of variance in Beijing PM2.5), ``spatial`` is a smooth
GP pattern over the 6 × 6 grid, and the remaining terms add mild temporal
texture.  Exponentiating yields the heavy-tailed, always-positive readings;
the log-scale parameters are chosen so the resulting mean/std match Table 1
to within a few percent, and a final affine correction on the log scale
pins the mean exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.registry import DATASETS
from repro.datasets.base import SensingDataset
from repro.datasets.spatial import grid_coordinates, sample_spatial_field
from repro.datasets.temporal import ar1_series, diurnal_profile, smooth_episode_series
from repro.utils.seeding import RngLike, derive_rng
from repro.utils.validation import check_positive, check_positive_int

#: Calibration targets from Table 1 of the paper.
PM25_MEAN, PM25_STD = 79.11, 81.21

_GRID_ROWS, _GRID_COLS = 6, 6
_CELL_SIZE = 1000.0
_CYCLE_HOURS = 1.0
_DURATION_DAYS = 11


@DATASETS.register("uair")
def generate_uair(
    *,
    n_cells: Optional[int] = None,
    duration_days: float = _DURATION_DAYS,
    cycle_length_hours: float = _CYCLE_HOURS,
    seed: RngLike = 0,
) -> SensingDataset:
    """Generate a U-Air-scale PM2.5 dataset.

    Parameters
    ----------
    n_cells:
        Number of cells (default 36 = the full 6 × 6 grid).  Smaller values
        take the first ``n_cells`` grid positions and are intended for tests.
    duration_days:
        Campaign duration in days (default 11).
    cycle_length_hours:
        Cycle length in hours (default 1).
    seed:
        Seed controlling every random component.
    """
    n_cells = check_positive_int(n_cells if n_cells is not None else _GRID_ROWS * _GRID_COLS, "n_cells")
    if n_cells > _GRID_ROWS * _GRID_COLS:
        raise ValueError(
            f"n_cells must be at most {_GRID_ROWS * _GRID_COLS}, got {n_cells}"
        )
    check_positive(duration_days, "duration_days")
    check_positive(cycle_length_hours, "cycle_length_hours")

    cycles_per_day = int(round(24.0 / cycle_length_hours))
    n_cycles = max(2, int(round(duration_days * cycles_per_day)))

    coordinates = grid_coordinates(_GRID_ROWS, _GRID_COLS, _CELL_SIZE, _CELL_SIZE)[:n_cells]

    spatial = sample_spatial_field(
        coordinates, length_scale=2500.0, n_samples=1, seed=derive_rng(seed, 1)
    )[0]
    spatial = 0.35 * spatial / max(np.abs(spatial).max(), 1e-9)

    episode = smooth_episode_series(
        n_cycles, episode_length=cycles_per_day * 1.5, amplitude=0.85, seed=derive_rng(seed, 2)
    )
    diurnal = 0.15 * diurnal_profile(n_cycles, cycles_per_day, amplitude=1.0, peak_hour=8.0)
    residual = np.stack(
        [
            ar1_series(n_cycles, correlation=0.7, innovation_std=0.08, seed=derive_rng(seed, 100 + i))
            for i in range(n_cells)
        ]
    )
    noise = 0.03 * derive_rng(seed, 999).standard_normal((n_cells, n_cycles))

    log_pm = (
        spatial[:, None]
        + episode[None, :]
        + diurnal[None, :]
        + residual
        + noise
    )
    # Choose the log-scale offset/scale so that exp(log_pm) approximately has
    # the Table-1 mean and coefficient of variation (std/mean ≈ 1.03).
    target_cv = PM25_STD / PM25_MEAN
    sigma = np.sqrt(np.log(1.0 + target_cv**2))
    log_pm = (log_pm - log_pm.mean()) / max(log_pm.std(), 1e-12) * sigma
    mu = np.log(PM25_MEAN) - 0.5 * sigma**2
    data = np.exp(mu + log_pm)

    return SensingDataset(
        name="uair-pm25",
        data=data,
        coordinates=coordinates,
        cycle_length_hours=cycle_length_hours,
        metric="classification",
        units="µg/m³",
        cell_size="1000m x 1000m",
        city="Beijing (synthetic)",
        extra={
            "target_mean": PM25_MEAN,
            "target_std": PM25_STD,
            "grid_rows": _GRID_ROWS,
            "grid_cols": _GRID_COLS,
        },
    )
