"""Sensing-dataset substrate.

The paper evaluates on two real datasets, Sensor-Scope (EPFL campus
temperature & humidity) and U-Air (Beijing PM2.5).  Neither is available
offline, so this subpackage provides synthetic substitutes that preserve the
properties the cell-selection problem depends on — spatial smoothness,
temporal (diurnal + autoregressive) correlation, low effective rank, and
matched scale (number of cells, cycle length, duration, mean and standard
deviation from Table 1 of the paper).  See DESIGN.md §4 for the full
substitution rationale.

* :class:`~repro.datasets.base.SensingDataset` — the in-memory dataset
  container (data matrix, cell coordinates, metadata, train/test split).
* :mod:`~repro.datasets.spatial` / :mod:`~repro.datasets.temporal` — the
  correlated-field building blocks.
* :func:`~repro.datasets.sensorscope.generate_sensorscope` — temperature and
  humidity at Sensor-Scope scale.
* :func:`~repro.datasets.uair.generate_uair` — PM2.5 at U-Air scale.
* :mod:`~repro.datasets.aqi` — the six-category AQI classification used by
  the PM2.5 task.
"""

from repro.datasets.base import SensingDataset
from repro.datasets.sensorscope import generate_sensorscope
from repro.datasets.uair import generate_uair
from repro.datasets.aqi import AQI_BREAKPOINTS, aqi_category, aqi_category_name
from repro.datasets.spatial import grid_coordinates, sample_spatial_field, squared_exponential_kernel
from repro.datasets.temporal import ar1_series, diurnal_profile

__all__ = [
    "SensingDataset",
    "generate_sensorscope",
    "generate_uair",
    "AQI_BREAKPOINTS",
    "aqi_category",
    "aqi_category_name",
    "grid_coordinates",
    "sample_spatial_field",
    "squared_exponential_kernel",
    "ar1_series",
    "diurnal_profile",
]
