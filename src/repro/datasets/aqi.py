"""Air Quality Index (AQI) categorisation for the PM2.5 task.

The U-Air experiment infers the *category* of the air quality index rather
than the raw PM2.5 value, and measures classification error over the six
standard categories (paper §5.1, footnote 4).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.inference.metrics import DEFAULT_CLASSIFICATION_BREAKPOINTS

#: Upper bounds of the first five AQI categories (µg/m³); readings above the
#: last bound fall into the sixth ("Hazardous") category.  Aliases the
#: metric-layer constant so the categoriser and the classification-error
#: metric can never drift apart.
AQI_BREAKPOINTS: tuple[float, ...] = DEFAULT_CLASSIFICATION_BREAKPOINTS

#: Human-readable category names, index-aligned with the digitised categories.
AQI_CATEGORY_NAMES: tuple[str, ...] = (
    "Good",
    "Moderate",
    "Unhealthy for Sensitive Groups",
    "Unhealthy",
    "Very Unhealthy",
    "Hazardous",
)


def aqi_category(values: Union[float, np.ndarray, Sequence[float]]) -> np.ndarray:
    """Map PM2.5 readings to integer AQI categories 0–5.

    Accepts a scalar or an array; always returns an integer array of the same
    shape (0-d for scalars).
    """
    array = np.asarray(values, dtype=float)
    if np.isnan(array).any():
        raise ValueError("PM2.5 readings must not contain NaN")
    if (array < 0).any():
        raise ValueError("PM2.5 readings must be non-negative")
    # right=True places boundary values (e.g. exactly 50) in the lower
    # category, matching the inclusive upper bounds of the AQI definition.
    return np.digitize(array, AQI_BREAKPOINTS, right=True)


def aqi_category_name(value: float) -> str:
    """Return the category name for a single PM2.5 reading."""
    category = int(aqi_category(float(value)))
    return AQI_CATEGORY_NAMES[category]
