"""Synthetic Sensor-Scope-scale temperature and humidity datasets.

The real Sensor-Scope deployment covers the EPFL campus (≈ 500 m × 300 m)
with a 10 × 10 grid of 50 m × 30 m cells, of which 57 carry valid sensors;
readings are taken every half hour for 7 days (paper Table 1).  The
synthetic substitute reproduces that geometry and cadence and combines

* a smooth spatial base pattern (squared-exponential GP over cell centres),
* a shared diurnal cycle whose amplitude varies smoothly across cells,
* a city-wide AR(1) weather trend,
* a small-amplitude per-cell AR(1) residual, and
* independent measurement noise,

and is finally rescaled to the target mean ± standard deviation from
Table 1 (6.04 ± 1.87 °C for temperature, 84.52 ± 6.32 % for humidity).  The
result is a spatially smooth, temporally correlated, approximately low-rank
matrix — the properties compressive sensing and DR-Cell exploit.

Temperature and humidity are generated from *shared* latent components with
opposite loadings (humidity drops when temperature peaks), which is what
makes the transfer-learning experiment (paper Figure 7) meaningful.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.registry import DATASETS
from repro.datasets.base import SensingDataset
from repro.datasets.spatial import grid_coordinates, sample_spatial_field, select_valid_cells
from repro.datasets.temporal import ar1_series, diurnal_profile
from repro.utils.seeding import RngLike, derive_rng
from repro.utils.validation import check_positive, check_positive_int

#: Calibration targets from Table 1 of the paper.
TEMPERATURE_MEAN, TEMPERATURE_STD = 6.04, 1.87
HUMIDITY_MEAN, HUMIDITY_STD = 84.52, 6.32

_GRID_ROWS, _GRID_COLS = 10, 10
_CELL_WIDTH, _CELL_HEIGHT = 50.0, 30.0
_VALID_CELLS = 57
_CYCLE_HOURS = 0.5
_DURATION_DAYS = 7


@DATASETS.register("sensorscope")
def generate_sensorscope(
    kind: str = "temperature",
    *,
    n_cells: Optional[int] = None,
    duration_days: float = _DURATION_DAYS,
    cycle_length_hours: float = _CYCLE_HOURS,
    seed: RngLike = 0,
) -> SensingDataset:
    """Generate a Sensor-Scope-scale dataset.

    Parameters
    ----------
    kind:
        ``"temperature"`` or ``"humidity"``.  Both kinds generated from the
        same seed share their latent spatio-temporal components (with
        different loadings), mimicking the correlated multi-task setting
        used by the transfer-learning experiment.
    n_cells:
        Override the number of valid cells (default 57).  Smaller values are
        useful for fast tests; the spatial layout is still drawn from the
        same 10×10 grid.
    duration_days:
        Campaign duration in days (default 7, as in the paper).
    cycle_length_hours:
        Sensing-cycle length in hours (default 0.5).
    seed:
        Seed controlling every random component.
    """
    kind = kind.lower()
    if kind not in ("temperature", "humidity"):
        raise ValueError(f"kind must be 'temperature' or 'humidity', got {kind!r}")
    n_valid = check_positive_int(n_cells if n_cells is not None else _VALID_CELLS, "n_cells")
    if n_valid > _GRID_ROWS * _GRID_COLS:
        raise ValueError(
            f"n_cells must be at most {_GRID_ROWS * _GRID_COLS} (the grid size), got {n_valid}"
        )
    check_positive(duration_days, "duration_days")
    check_positive(cycle_length_hours, "cycle_length_hours")

    cycles_per_day = int(round(24.0 / cycle_length_hours))
    n_cycles = max(2, int(round(duration_days * cycles_per_day)))

    latent = _shared_latent_components(
        n_valid, n_cycles, cycles_per_day, seed=seed
    )
    if kind == "temperature":
        raw = _compose(latent, diurnal_loading=1.0, trend_loading=1.0, seed=derive_rng(seed, 10))
        target_mean, target_std, units = TEMPERATURE_MEAN, TEMPERATURE_STD, "°C"
    else:
        # Humidity moves opposite to temperature on the shared components.
        raw = _compose(latent, diurnal_loading=-0.8, trend_loading=-0.7, seed=derive_rng(seed, 11))
        target_mean, target_std, units = HUMIDITY_MEAN, HUMIDITY_STD, "%"

    data = _rescale(raw, target_mean, target_std)
    if kind == "humidity":
        data = np.clip(data, 0.0, 100.0)

    return SensingDataset(
        name=f"sensorscope-{kind}",
        data=data,
        coordinates=latent["coordinates"],
        cycle_length_hours=cycle_length_hours,
        metric="mae",
        units=units,
        cell_size=f"{_CELL_WIDTH:.0f}m x {_CELL_HEIGHT:.0f}m",
        city="Lausanne (synthetic)",
        extra={
            "target_mean": target_mean,
            "target_std": target_std,
            "grid_rows": _GRID_ROWS,
            "grid_cols": _GRID_COLS,
        },
    )


def generate_sensorscope_pair(
    *,
    n_cells: Optional[int] = None,
    duration_days: float = _DURATION_DAYS,
    cycle_length_hours: float = _CYCLE_HOURS,
    seed: RngLike = 0,
) -> Tuple[SensingDataset, SensingDataset]:
    """Generate the correlated (temperature, humidity) pair from one seed."""
    temperature = generate_sensorscope(
        "temperature",
        n_cells=n_cells,
        duration_days=duration_days,
        cycle_length_hours=cycle_length_hours,
        seed=seed,
    )
    humidity = generate_sensorscope(
        "humidity",
        n_cells=n_cells,
        duration_days=duration_days,
        cycle_length_hours=cycle_length_hours,
        seed=seed,
    )
    return temperature, humidity


# -- internals ---------------------------------------------------------------


def _shared_latent_components(
    n_valid: int, n_cycles: int, cycles_per_day: int, *, seed: RngLike
) -> Dict[str, np.ndarray]:
    """Latent spatio-temporal components shared by temperature and humidity."""
    all_coordinates = grid_coordinates(_GRID_ROWS, _GRID_COLS, _CELL_WIDTH, _CELL_HEIGHT)
    valid = select_valid_cells(
        _GRID_ROWS * _GRID_COLS, n_valid, seed=derive_rng(seed, 0)
    )
    coordinates = all_coordinates[valid]

    # Spatial patterns: a base offset field (microclimate) and an amplitude
    # field modulating how strongly each cell feels the diurnal cycle.
    base_field, amplitude_field = sample_spatial_field(
        coordinates, length_scale=150.0, n_samples=2, seed=derive_rng(seed, 1)
    )
    amplitude_field = 1.0 + 0.3 * amplitude_field / max(np.abs(amplitude_field).max(), 1e-9)

    diurnal = diurnal_profile(n_cycles, cycles_per_day, amplitude=1.0, peak_hour=15.0, harmonics=2)
    trend = ar1_series(n_cycles, correlation=0.97, innovation_std=0.25, seed=derive_rng(seed, 2))

    return {
        "coordinates": coordinates,
        "base_field": base_field,
        "amplitude_field": amplitude_field,
        "diurnal": diurnal,
        "trend": trend,
        "n_cycles": np.asarray([n_cycles]),
    }


def _compose(
    latent: Dict[str, np.ndarray],
    *,
    diurnal_loading: float,
    trend_loading: float,
    seed: RngLike,
) -> np.ndarray:
    """Combine the shared latent components into one raw (unscaled) matrix."""
    coordinates = latent["coordinates"]
    n_cells = coordinates.shape[0]
    n_cycles = int(latent["n_cycles"][0])

    base = latent["base_field"][:, None]
    diurnal = diurnal_loading * latent["amplitude_field"][:, None] * latent["diurnal"][None, :]
    trend = trend_loading * latent["trend"][None, :]

    residual = np.stack(
        [
            ar1_series(n_cycles, correlation=0.8, innovation_std=0.15, seed=derive_rng(seed, 100 + i))
            for i in range(n_cells)
        ]
    )
    noise_rng = derive_rng(seed, 999)
    measurement_noise = 0.05 * noise_rng.standard_normal((n_cells, n_cycles))

    return 0.8 * base + diurnal + trend + residual + measurement_noise


def _rescale(raw: np.ndarray, target_mean: float, target_std: float) -> np.ndarray:
    """Affinely rescale a raw matrix to the target global mean and std."""
    std = raw.std()
    if std < 1e-12:
        return np.full_like(raw, target_mean)
    return (raw - raw.mean()) / std * target_std + target_mean
