"""The :class:`SensingDataset` container.

A dataset bundles the ground-truth cells × cycles matrix with the spatial
layout of the cells and the task metadata the rest of the library needs
(error metric, cycle length, units).  It also provides the train/test split
used throughout the paper's evaluation: the first *training_days* of data
form the preliminary study the organiser uses to train the Q-function, the
rest is the testing stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.validation import check_matrix, check_positive


@dataclass
class SensingDataset:
    """A spatio-temporal sensing dataset.

    Attributes
    ----------
    name:
        Dataset identifier, e.g. ``"sensorscope-temperature"``.
    data:
        Ground-truth matrix of shape ``(n_cells, n_cycles)``.
    coordinates:
        Cell-centre coordinates of shape ``(n_cells, 2)`` in metres.
    cycle_length_hours:
        Length of one sensing cycle in hours.
    metric:
        Error-metric name used by this task (``"mae"`` or ``"classification"``).
    units:
        Human-readable measurement units (e.g. ``"°C"``).
    cell_size:
        Human-readable description of the cell footprint (e.g. ``"50m x 30m"``).
    city:
        Location label used in Table 1.
    extra:
        Free-form metadata (calibration targets, generator parameters).
    """

    name: str
    data: np.ndarray
    coordinates: np.ndarray
    cycle_length_hours: float
    metric: str = "mae"
    units: str = ""
    cell_size: str = ""
    city: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = check_matrix(self.data, "data", allow_nan=False)
        self.coordinates = np.asarray(self.coordinates, dtype=float)
        if self.coordinates.ndim != 2 or self.coordinates.shape[0] != self.data.shape[0]:
            raise ValueError(
                "coordinates must have one row per cell: "
                f"{self.coordinates.shape} vs {self.data.shape[0]} cells"
            )
        check_positive(self.cycle_length_hours, "cycle_length_hours")

    # -- basic properties ----------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Number of cells (rows of the data matrix)."""
        return int(self.data.shape[0])

    @property
    def n_cycles(self) -> int:
        """Number of sensing cycles (columns of the data matrix)."""
        return int(self.data.shape[1])

    @property
    def duration_days(self) -> float:
        """Campaign duration in days implied by the cycle length."""
        return self.n_cycles * self.cycle_length_hours / 24.0

    @property
    def cycles_per_day(self) -> int:
        """Number of cycles per day (rounded to the nearest integer)."""
        return int(round(24.0 / self.cycle_length_hours))

    def mean(self) -> float:
        """Mean of all ground-truth readings."""
        return float(self.data.mean())

    def std(self) -> float:
        """Standard deviation of all ground-truth readings."""
        return float(self.data.std())

    # -- splits ----------------------------------------------------------------

    def cycles_for_days(self, days: float) -> int:
        """Number of cycles corresponding to ``days`` days (at least 1)."""
        check_positive(days, "days")
        return max(1, int(round(days * 24.0 / self.cycle_length_hours)))

    def train_test_split(self, training_days: float = 2.0) -> Tuple["SensingDataset", "SensingDataset"]:
        """Split into (training, testing) datasets along the cycle axis.

        The paper uses the first two days as the organiser's preliminary
        study (training stage) and the remaining cycles as the testing
        stage.
        """
        split = self.cycles_for_days(training_days)
        if split >= self.n_cycles:
            raise ValueError(
                f"training period of {training_days} days ({split} cycles) does not "
                f"leave any testing cycles out of {self.n_cycles}"
            )
        train = self.slice_cycles(0, split, suffix="train")
        test = self.slice_cycles(split, self.n_cycles, suffix="test")
        return train, test

    def slice_cycles(self, start: int, stop: int, *, suffix: Optional[str] = None) -> "SensingDataset":
        """Return a new dataset restricted to cycles ``[start, stop)``."""
        if not 0 <= start < stop <= self.n_cycles:
            raise ValueError(
                f"invalid cycle slice [{start}, {stop}) for {self.n_cycles} cycles"
            )
        name = self.name if suffix is None else f"{self.name}-{suffix}"
        return SensingDataset(
            name=name,
            data=self.data[:, start:stop].copy(),
            coordinates=self.coordinates.copy(),
            cycle_length_hours=self.cycle_length_hours,
            metric=self.metric,
            units=self.units,
            cell_size=self.cell_size,
            city=self.city,
            extra=dict(self.extra),
        )

    def summary(self) -> Dict[str, object]:
        """Table-1-style summary row for this dataset."""
        return {
            "dataset": self.name,
            "city": self.city,
            "cell_size": self.cell_size,
            "n_cells": self.n_cells,
            "cycle_length_h": self.cycle_length_hours,
            "duration_d": round(self.duration_days, 2),
            "metric": self.metric,
            "mean": round(self.mean(), 2),
            "std": round(self.std(), 2),
            "units": self.units,
        }
