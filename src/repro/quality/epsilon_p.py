"""(ε, p)-quality: the Sparse MCS quality guarantee (paper Definition 6).

A campaign satisfies (ε, p)-quality when, in at least ``p·100%`` of cycles,
the inference error of that cycle is at most ε.  The requirement couples an
error bound with a metric because different tasks use different error
definitions (mean absolute error for temperature/humidity, classification
error for PM2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.inference.metrics import (
    CLASSIFICATION_METRICS,
    DEFAULT_CLASSIFICATION_BREAKPOINTS,
    cycle_error,
    get_metric,
)
from repro.utils.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class QualityRequirement:
    """An (ε, p)-quality requirement for a sensing task.

    Attributes
    ----------
    epsilon:
        The per-cycle error bound ε (in the units of ``metric``).
    p:
        The required fraction of cycles whose error must be ≤ ε.
    metric:
        Error-metric name understood by :func:`repro.inference.metrics.get_metric`.
    breakpoints:
        Optional category edges for classification metrics.  ``None`` keeps
        the standard AQI edges.  The requirement is the single source of the
        edges: the error metric and the quality assessors both read them from
        here, so an assessor can never judge quality against different
        category boundaries than the metric it estimates.
    """

    epsilon: float
    p: float = 0.9
    metric: str = "mae"
    breakpoints: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        check_non_negative(self.epsilon, "epsilon")
        check_probability(self.p, "p")
        get_metric(self.metric)  # validate the metric name eagerly
        if self.breakpoints is not None:
            if not self.is_classification:
                raise ValueError(
                    "breakpoints are only meaningful for classification metrics, "
                    f"not {self.metric!r}"
                )
            edges = tuple(float(edge) for edge in self.breakpoints)
            if len(edges) == 0 or np.any(np.diff(edges) <= 0):
                raise ValueError("breakpoints must be a strictly increasing, non-empty sequence")
            object.__setattr__(self, "breakpoints", edges)

    @property
    def is_classification(self) -> bool:
        """Whether the metric categorises values instead of measuring a distance."""
        return self.metric.lower() in CLASSIFICATION_METRICS

    def category_edges(self) -> Tuple[float, ...]:
        """The category edges classification metrics and assessors must share."""
        return self.breakpoints if self.breakpoints is not None else DEFAULT_CLASSIFICATION_BREAKPOINTS

    def column_error(
        self,
        truth_column: np.ndarray,
        estimate_column: np.ndarray,
        *,
        exclude: Optional[np.ndarray] = None,
    ) -> float:
        """One cycle's inference error under this requirement's metric settings.

        This is the canonical way to measure a cycle against a requirement:
        it forwards the metric *and* its breakpoints, so every consumer
        (campaign runner, training environment, oracle assessor) judges
        errors over identical category edges.
        """
        return cycle_error(
            truth_column,
            estimate_column,
            metric=self.metric,
            exclude=exclude,
            breakpoints=self.breakpoints,
        )

    def cycle_satisfied(self, error: float) -> bool:
        """True when one cycle's error meets the bound ε."""
        return bool(error <= self.epsilon)

    def describe(self) -> str:
        """Human-readable form, e.g. ``(0.3, 0.9)-quality [mae]``."""
        return f"({self.epsilon:g}, {self.p:g})-quality [{self.metric}]"


def satisfies_epsilon_p(errors: Sequence[float], requirement: QualityRequirement) -> bool:
    """Whether a sequence of per-cycle errors satisfies the (ε, p) requirement."""
    errors = np.asarray(list(errors), dtype=float)
    if errors.size == 0:
        raise ValueError("cannot evaluate (epsilon, p)-quality over zero cycles")
    satisfied = np.count_nonzero(errors <= requirement.epsilon)
    return bool(satisfied >= requirement.p * errors.size)


@dataclass
class QualityTracker:
    """Accumulates per-cycle errors of a campaign and reports (ε, p) compliance."""

    requirement: QualityRequirement
    errors: List[float] = field(default_factory=list)

    def record(self, error: float) -> bool:
        """Record one cycle's error; return whether that cycle met the bound."""
        error = float(error)
        if not np.isfinite(error) or error < 0:
            raise ValueError(f"cycle error must be a finite non-negative number, got {error}")
        self.errors.append(error)
        return self.requirement.cycle_satisfied(error)

    @property
    def n_cycles(self) -> int:
        """Number of cycles recorded so far."""
        return len(self.errors)

    @property
    def satisfied_fraction(self) -> float:
        """Fraction of recorded cycles whose error met the bound ε."""
        if not self.errors:
            return 0.0
        within = sum(1 for error in self.errors if self.requirement.cycle_satisfied(error))
        return within / len(self.errors)

    @property
    def satisfied(self) -> bool:
        """Whether the campaign so far satisfies (ε, p)-quality."""
        if not self.errors:
            return False
        return satisfies_epsilon_p(self.errors, self.requirement)

    def mean_error(self) -> float:
        """Mean per-cycle error over the campaign so far."""
        if not self.errors:
            return float("nan")
        return float(np.mean(self.errors))
