"""(ε, p)-quality: the Sparse MCS quality guarantee (paper Definition 6).

A campaign satisfies (ε, p)-quality when, in at least ``p·100%`` of cycles,
the inference error of that cycle is at most ε.  The requirement couples an
error bound with a metric because different tasks use different error
definitions (mean absolute error for temperature/humidity, classification
error for PM2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.inference.metrics import get_metric
from repro.utils.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class QualityRequirement:
    """An (ε, p)-quality requirement for a sensing task.

    Attributes
    ----------
    epsilon:
        The per-cycle error bound ε (in the units of ``metric``).
    p:
        The required fraction of cycles whose error must be ≤ ε.
    metric:
        Error-metric name understood by :func:`repro.inference.metrics.get_metric`.
    """

    epsilon: float
    p: float = 0.9
    metric: str = "mae"

    def __post_init__(self) -> None:
        check_non_negative(self.epsilon, "epsilon")
        check_probability(self.p, "p")
        get_metric(self.metric)  # validate the metric name eagerly

    def cycle_satisfied(self, error: float) -> bool:
        """True when one cycle's error meets the bound ε."""
        return bool(error <= self.epsilon)

    def describe(self) -> str:
        """Human-readable form, e.g. ``(0.3, 0.9)-quality [mae]``."""
        return f"({self.epsilon:g}, {self.p:g})-quality [{self.metric}]"


def satisfies_epsilon_p(errors: Sequence[float], requirement: QualityRequirement) -> bool:
    """Whether a sequence of per-cycle errors satisfies the (ε, p) requirement."""
    errors = np.asarray(list(errors), dtype=float)
    if errors.size == 0:
        raise ValueError("cannot evaluate (epsilon, p)-quality over zero cycles")
    satisfied = np.count_nonzero(errors <= requirement.epsilon)
    return bool(satisfied >= requirement.p * errors.size)


@dataclass
class QualityTracker:
    """Accumulates per-cycle errors of a campaign and reports (ε, p) compliance."""

    requirement: QualityRequirement
    errors: List[float] = field(default_factory=list)

    def record(self, error: float) -> bool:
        """Record one cycle's error; return whether that cycle met the bound."""
        error = float(error)
        if not np.isfinite(error) or error < 0:
            raise ValueError(f"cycle error must be a finite non-negative number, got {error}")
        self.errors.append(error)
        return self.requirement.cycle_satisfied(error)

    @property
    def n_cycles(self) -> int:
        """Number of cycles recorded so far."""
        return len(self.errors)

    @property
    def satisfied_fraction(self) -> float:
        """Fraction of recorded cycles whose error met the bound ε."""
        if not self.errors:
            return 0.0
        within = sum(1 for error in self.errors if self.requirement.cycle_satisfied(error))
        return within / len(self.errors)

    @property
    def satisfied(self) -> bool:
        """Whether the campaign so far satisfies (ε, p)-quality."""
        if not self.errors:
            return False
        return satisfies_epsilon_p(self.errors, self.requirement)

    def mean_error(self) -> float:
        """Mean per-cycle error over the campaign so far."""
        if not self.errors:
            return float("nan")
        return float(np.mean(self.errors))
