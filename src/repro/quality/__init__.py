"""Quality-assessment substrate for Sparse MCS.

Two pieces (paper Definition 6 and §5.3):

* :mod:`~repro.quality.epsilon_p` — the (ε, p)-quality requirement itself
  and a campaign-level tracker that records whether each cycle met the error
  bound ε and whether the whole campaign met the fraction p.
* :mod:`~repro.quality.loo_bayesian` — the leave-one-out Bayesian assessor
  used at test time to estimate, *without ground truth*, the probability
  that the current cycle's inference error is below ε.
"""

from repro.quality.epsilon_p import QualityRequirement, QualityTracker, satisfies_epsilon_p
from repro.quality.loo_bayesian import LeaveOneOutBayesianAssessor, OracleAssessor, QualityAssessor

__all__ = [
    "QualityRequirement",
    "QualityTracker",
    "satisfies_epsilon_p",
    "QualityAssessor",
    "LeaveOneOutBayesianAssessor",
    "OracleAssessor",
]
