"""Leave-one-out Bayesian quality assessment (paper Definition 6 and §5.3).

At test time the organiser does not know the ground truth of unsensed cells,
so it cannot measure the inference error directly.  The Sparse MCS
literature instead estimates it with a leave-one-out (LOO) procedure: each
*sensed* cell is removed in turn, re-inferred from the remaining sensed
cells, and the resulting LOO errors are treated as samples of the cycle's
inference-error distribution.  A Bayesian posterior over the mean error of
the *unsensed* cells then gives the probability that the cycle error is
below ε; data collection stops for the cycle once that probability reaches
p.

Two assessors are provided:

* :class:`LeaveOneOutBayesianAssessor` — the test-time assessor described
  above.  For continuous metrics (MAE) a normal-approximation posterior over
  the mean error is used; for the classification metric a Beta–Bernoulli
  posterior over the misclassification probability is used.
* :class:`OracleAssessor` — a train-time assessor with access to the ground
  truth column, used for reward computation during Q-function training
  (the paper's footnote 2: during training the organiser is assumed to have
  collected the data of all the cells for a preliminary period).

Assessment is the hot path of every campaign: the assessor is consulted
after each submission, and each consultation runs up to ``max_loo_cells``
full matrix completions.  Both assessors therefore route their completions
through :meth:`InferenceAlgorithm.complete_batch` — the K held-out LOO
windows of one consultation (and, via :meth:`QualityAssessor.assess_many`,
the windows of many lockstep campaign slots) are solved in a single batched
call.  Algorithms without a vectorized solver fall back to the base class's
sequential ``complete_batch``, which is bit-exact with the old one-at-a-time
loop.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.api.registry import ASSESSORS
from repro.inference.base import InferenceAlgorithm
from repro.obs.profile import phase
from repro.quality.epsilon_p import QualityRequirement
from repro.utils.seeding import RngLike, as_rng
from repro.utils.validation import check_positive_int


class QualityAssessor(abc.ABC):
    """Decides whether the current cycle has collected enough cells."""

    @abc.abstractmethod
    def assess(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> bool:
        """Return True when the current cycle is judged to satisfy the requirement.

        Parameters
        ----------
        observed_matrix:
            Cells × cycles matrix of the data collected so far, NaN for
            unobserved entries; column ``cycle`` is the cycle under
            assessment.
        cycle:
            Index of the current cycle.
        requirement:
            The (ε, p)-quality requirement of the task.
        inference:
            The inference algorithm the campaign uses (needed for the LOO
            re-inference).
        """

    def assess_many(
        self,
        observed_matrices: Sequence[np.ndarray],
        cycles: Sequence[int],
        requirements: Sequence[QualityRequirement],
        inference: InferenceAlgorithm,
        *,
        rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
    ) -> List[bool]:
        """Assess several campaign slots in one call.

        The base implementation loops over :meth:`assess`; the built-in
        assessors override it to pool every slot's matrix completions into a
        single :meth:`InferenceAlgorithm.complete_batch` call, which is what
        makes lockstep multi-policy campaigns cheap.

        ``rngs`` optionally carries one generator per slot (None entries
        fall back to the assessor's own stream).  When several *equivalent*
        assessor instances are pooled through one representative, passing
        each slot's own generator keeps every campaign's assessment
        randomness independent of who shares its batch.  Deterministic
        assessors ignore it.
        """
        del rngs  # the base protocol draws no randomness per slot
        return [
            self.assess(observed, cycle, requirement, inference)
            for observed, cycle, requirement in zip(observed_matrices, cycles, requirements)
        ]


@ASSESSORS.register("loo_bayesian")
class LeaveOneOutBayesianAssessor(QualityAssessor):
    """Leave-one-out Bayesian estimate of P(cycle error ≤ ε).

    Parameters
    ----------
    min_observations:
        Minimum number of sensed cells in the cycle before the assessor is
        willing to declare the quality satisfied; below this the LOO sample
        is too small to be trusted and the assessor always returns False.
    max_loo_cells:
        Cap on the number of LOO re-inferences per assessment (each one is a
        full matrix completion); when more cells are sensed a random subset
        of this size is evaluated.
    history_window:
        Number of past cycles included in the matrix handed to the inference
        algorithm.  Bounding the history keeps each assessment's cost flat
        over the campaign.
    batched:
        Solve the held-out LOO windows with one
        :meth:`InferenceAlgorithm.complete_batch` call (the default).  For
        algorithms with a vectorized solver the batched completions can
        differ from the sequential ones by the solver's documented tolerance;
        set ``batched=False`` to force the one-completion-at-a-time protocol.
    """

    def __init__(
        self,
        min_observations: int = 3,
        max_loo_cells: int = 12,
        history_window: int = 24,
        *,
        batched: bool = True,
        rng: RngLike = None,
    ) -> None:
        self.min_observations = check_positive_int(min_observations, "min_observations")
        self.max_loo_cells = check_positive_int(max_loo_cells, "max_loo_cells")
        self.history_window = check_positive_int(history_window, "history_window")
        self.batched = bool(batched)
        # `rng or default_rng(0)` would silently discard falsy seeds (0) and
        # crash on truthy ints; normalise through the seeding helpers instead.
        self._rng = as_rng(0 if rng is None else rng)

    @property
    def rng(self) -> np.random.Generator:
        """The assessor's LOO-subsampling stream.

        Public so pooled ``assess_many`` callers (the decision server, the
        lockstep runner) can thread each slot's own stream through a shared
        representative instance — per-campaign RNG partitioning.
        """
        return self._rng

    def assess(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> bool:
        probability = self.probability_error_below(
            observed_matrix, cycle, requirement, inference
        )
        return bool(probability >= requirement.p)

    def assess_many(
        self,
        observed_matrices: Sequence[np.ndarray],
        cycles: Sequence[int],
        requirements: Sequence[QualityRequirement],
        inference: InferenceAlgorithm,
        *,
        rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
    ) -> List[bool]:
        with phase("loo.assess"):
            probabilities = self.probabilities_error_below(
                observed_matrices, cycles, requirements, inference, rngs=rngs
            )
        return [
            bool(probability >= requirement.p)
            for probability, requirement in zip(probabilities, requirements)
        ]

    def probability_error_below(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> float:
        """Posterior probability that the current cycle's error is ≤ ε."""
        return self.probabilities_error_below(
            [observed_matrix], [cycle], [requirement], inference
        )[0]

    def probabilities_error_below(
        self,
        observed_matrices: Sequence[np.ndarray],
        cycles: Sequence[int],
        requirements: Sequence[QualityRequirement],
        inference: InferenceAlgorithm,
        *,
        rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
    ) -> List[float]:
        """Posterior probabilities for several slots, with pooled completions.

        All undecided slots' held-out LOO windows are collected first and
        completed in one :meth:`InferenceAlgorithm.complete_batch` call, so P
        lockstep campaign slots cost one batched solve instead of up to
        ``P · max_loo_cells`` sequential ones.

        The only randomness is the ``max_loo_cells`` subsample draw; with
        ``rngs`` each slot draws from its own stream (None entries fall back
        to this instance's stream), so a campaign's draw sequence does not
        depend on which other slots share the pooled call.
        """
        n_slots = len(observed_matrices)
        if not (len(cycles) == len(requirements) == n_slots):
            raise ValueError("observed_matrices, cycles and requirements must be index-aligned")
        if rngs is not None and len(rngs) != n_slots:
            raise ValueError(f"{n_slots} slots but {len(rngs)} rngs")
        probabilities: List[Optional[float]] = [None] * n_slots
        plans: List[Tuple[int, np.ndarray, np.ndarray, int, int]] = []
        held_out_pool: List[np.ndarray] = []

        for slot, (observed, cycle) in enumerate(zip(observed_matrices, cycles)):
            observed = np.asarray(observed, dtype=float)
            if not 0 <= cycle < observed.shape[1]:
                raise IndexError(
                    f"cycle {cycle} out of range for {observed.shape[1]} cycles"
                )
            window = self._window(observed, cycle)
            current = window.shape[1] - 1
            sensed = np.flatnonzero(~np.isnan(window[:, current]))
            n_cells = window.shape[0]
            if sensed.size < self.min_observations:
                probabilities[slot] = 0.0
                continue
            if sensed.size == n_cells:
                # Everything sensed: there is no inference error at all.
                probabilities[slot] = 1.0
                continue
            if sensed.size > self.max_loo_cells:
                slot_rng = self._rng
                if rngs is not None and rngs[slot] is not None:
                    slot_rng = rngs[slot]
                chosen = slot_rng.choice(sensed, size=self.max_loo_cells, replace=False)
            else:
                chosen = sensed
            pool_start = len(held_out_pool)
            if sensed.size < 2:
                # Removing the only sensed cell would leave nothing to infer
                # from; every LOO window is degenerate, so no sample exists.
                cells = np.empty(0, dtype=int)
                true_values = np.empty(0, dtype=float)
            else:
                # Build all K held-out windows in one stacked write: K copies
                # of the window, then one fancy-indexed NaN assignment on the
                # (k, chosen[k], current) diagonal — no Python-level per-cell
                # copy loop.
                cells = np.asarray(chosen, dtype=int)
                true_values = window[cells, current].astype(float)
                stacked = np.repeat(window[np.newaxis, :, :], cells.size, axis=0)
                stacked[np.arange(cells.size), cells, current] = np.nan
                held_out_pool.extend(stacked)
            plans.append(
                (
                    slot,
                    cells,
                    true_values,
                    pool_start,
                    n_cells - sensed.size,
                )
            )

        with phase("loo.complete_pool"):
            completed_pool = self._complete_pool(held_out_pool, inference)

        for slot, cells, true_values, pool_start, n_unsensed in plans:
            if true_values.size == 0:
                probabilities[slot] = 0.0
                continue
            current = held_out_pool[pool_start].shape[1] - 1
            predicted_values = np.asarray(
                [
                    float(completed_pool[pool_start + k][cell, current])
                    for k, cell in enumerate(cells)
                ],
                dtype=float,
            )
            requirement = requirements[slot]
            if requirement.is_classification:
                probabilities[slot] = self._classification_posterior(
                    true_values, predicted_values, requirement, n_unsensed
                )
            else:
                loo_errors = np.abs(predicted_values - true_values)
                probabilities[slot] = self._continuous_posterior(
                    loo_errors, requirement, n_unsensed
                )
        return probabilities  # type: ignore[return-value]

    # -- round-tripping ----------------------------------------------------

    def state_dict(self) -> dict:
        """The LOO-subsampling stream position (the assessor's only state)."""
        from repro.utils.statedict import rng_state

        return {"rng": rng_state(self._rng)}

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.statedict import set_rng_state

        set_rng_state(self._rng, state["rng"])

    # -- internals ---------------------------------------------------------

    def _window(self, observed_matrix: np.ndarray, cycle: int) -> np.ndarray:
        start = max(0, cycle + 1 - self.history_window)
        return observed_matrix[:, start : cycle + 1]

    def _complete_pool(
        self, held_out_pool: List[np.ndarray], inference: InferenceAlgorithm
    ) -> List[np.ndarray]:
        """Complete every held-out LOO window, batched when the solver can.

        ``complete_batch`` degrades to a bit-exact sequential loop for
        algorithms without a vectorized solver; ``batched=False`` forces that
        loop even for algorithms that have one.
        """
        if not held_out_pool:
            return []
        if self.batched:
            return inference.complete_batch(held_out_pool)
        return [inference.complete(held_out) for held_out in held_out_pool]

    @staticmethod
    def _continuous_posterior(
        loo_errors: np.ndarray, requirement: QualityRequirement, n_unsensed: int
    ) -> float:
        """Normal-approximation posterior over the mean error of the unsensed cells.

        The LOO errors are treated as i.i.d. samples of the per-cell absolute
        error; the cycle error (MAE over unsensed cells) is the mean of
        ``n_unsensed`` such draws, so its posterior predictive mean/standard
        error follow from the sample statistics.  With only a handful of LOO
        samples the Student-t quantile widens the uncertainty appropriately.
        """
        n = loo_errors.size
        mean = float(loo_errors.mean())
        if n == 1:
            # A single sample carries no variance information; be conservative.
            return 1.0 if mean <= requirement.epsilon else 0.0
        std = float(loo_errors.std(ddof=1))
        standard_error = std / np.sqrt(n_unsensed) + std / np.sqrt(n)
        if standard_error <= 1e-12:
            return 1.0 if mean <= requirement.epsilon else 0.0
        t_stat = (requirement.epsilon - mean) / standard_error
        return float(stats.t.cdf(t_stat, df=n - 1))

    @staticmethod
    def _classification_posterior(
        true_values: np.ndarray,
        predicted_values: np.ndarray,
        requirement: QualityRequirement,
        n_unsensed: int,
    ) -> float:
        """Beta–Bernoulli posterior over the misclassification probability.

        Each LOO re-inference gives a Bernoulli outcome — does the
        re-inferred value fall into a different category than the true
        value?  With a Jeffreys Beta(1/2, 1/2) prior the posterior over the
        misclassification probability θ is Beta(1/2 + misses, 1/2 + hits).
        The cycle's classification error is the *mean* of ``n_unsensed``
        Bernoulli(θ) outcomes, so the probability that it is ≤ ε is the
        Beta-Binomial probability of at most ``⌊ε·n_unsensed⌋`` misses among
        the unsensed cells, with θ integrated out over its posterior.

        The category edges come from the requirement, categorised exactly the
        way :func:`repro.inference.metrics.classification_error` categorises
        (``np.digitize`` with inclusive upper bounds) — the posterior must
        estimate the same quantity the recorded metric measures.
        """
        edges = np.asarray(requirement.category_edges(), dtype=float)
        true_category = np.digitize(true_values, edges, right=True)
        predicted_category = np.digitize(predicted_values, edges, right=True)
        misses = int(np.count_nonzero(true_category != predicted_category))
        n = true_values.size
        alpha = 0.5 + misses
        beta = 0.5 + (n - misses)
        allowed_misses = int(np.floor(requirement.epsilon * n_unsensed))
        posterior_predictive = stats.betabinom(n_unsensed, alpha, beta)
        return float(posterior_predictive.cdf(allowed_misses))


@ASSESSORS.register("oracle")
class OracleAssessor(QualityAssessor):
    """Ground-truth quality assessment used during Q-function training.

    The paper's training stage assumes the organiser has collected the data
    of all cells for a preliminary period (footnote 2), so the inference
    error of the current cycle can be computed exactly.
    """

    def __init__(self, ground_truth: np.ndarray, history_window: int = 24) -> None:
        self.ground_truth = np.asarray(ground_truth, dtype=float)
        if self.ground_truth.ndim != 2:
            raise ValueError("ground_truth must be a cells x cycles matrix")
        self.history_window = check_positive_int(history_window, "history_window")

    def assess(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> bool:
        error = self.cycle_error(observed_matrix, cycle, requirement, inference)
        return bool(error <= requirement.epsilon)

    def assess_many(
        self,
        observed_matrices: Sequence[np.ndarray],
        cycles: Sequence[int],
        requirements: Sequence[QualityRequirement],
        inference: InferenceAlgorithm,
        *,
        rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
    ) -> List[bool]:
        del rngs  # the oracle draws no randomness
        errors = self.cycle_errors(observed_matrices, cycles, requirements, inference)
        return [
            bool(error <= requirement.epsilon)
            for error, requirement in zip(errors, requirements)
        ]

    def cycle_error(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> float:
        """Exact inference error of the current cycle over its unsensed cells."""
        return self.cycle_errors([observed_matrix], [cycle], [requirement], inference)[0]

    def cycle_errors(
        self,
        observed_matrices: Sequence[np.ndarray],
        cycles: Sequence[int],
        requirements: Sequence[QualityRequirement],
        inference: InferenceAlgorithm,
    ) -> List[float]:
        """Exact per-slot cycle errors, with the completions pooled into one batch."""
        n_slots = len(observed_matrices)
        if not (len(cycles) == len(requirements) == n_slots):
            raise ValueError("observed_matrices, cycles and requirements must be index-aligned")
        errors: List[Optional[float]] = [None] * n_slots
        pending: List[Tuple[int, np.ndarray]] = []
        windows: List[np.ndarray] = []

        for slot, (observed, cycle) in enumerate(zip(observed_matrices, cycles)):
            observed = np.asarray(observed, dtype=float)
            if observed.shape[0] != self.ground_truth.shape[0]:
                raise ValueError("observed matrix and ground truth disagree on cell count")
            if not 0 <= cycle < observed.shape[1]:
                raise IndexError(
                    f"cycle {cycle} out of range for {observed.shape[1]} cycles"
                )
            start = max(0, cycle + 1 - self.history_window)
            window = observed[:, start : cycle + 1]
            current = window.shape[1] - 1
            sensed = ~np.isnan(window[:, current])
            if sensed.all():
                # The *current column* is fully sensed, so there is nothing to
                # infer and the error is exactly 0 — no completion needed even
                # when earlier window columns still contain NaNs.
                errors[slot] = 0.0
                continue
            if not sensed.any():
                # Nothing sensed yet: the error of inferring from nothing is
                # effectively unbounded; report infinity so no requirement passes.
                errors[slot] = float("inf")
                continue
            pending.append((slot, sensed))
            windows.append(window)

        if windows:
            completed_windows = inference.complete_batch(windows)
            for (slot, sensed), completed in zip(pending, completed_windows):
                current = completed.shape[1] - 1
                errors[slot] = requirements[slot].column_error(
                    self.ground_truth[:, cycles[slot]],
                    completed[:, current],
                    exclude=sensed,
                )
        return errors  # type: ignore[return-value]
