"""Leave-one-out Bayesian quality assessment (paper Definition 6 and §5.3).

At test time the organiser does not know the ground truth of unsensed cells,
so it cannot measure the inference error directly.  The Sparse MCS
literature instead estimates it with a leave-one-out (LOO) procedure: each
*sensed* cell is removed in turn, re-inferred from the remaining sensed
cells, and the resulting LOO errors are treated as samples of the cycle's
inference-error distribution.  A Bayesian posterior over the mean error of
the *unsensed* cells then gives the probability that the cycle error is
below ε; data collection stops for the cycle once that probability reaches
p.

Two assessors are provided:

* :class:`LeaveOneOutBayesianAssessor` — the test-time assessor described
  above.  For continuous metrics (MAE) a normal-approximation posterior over
  the mean error is used; for the classification metric a Beta–Bernoulli
  posterior over the misclassification probability is used.
* :class:`OracleAssessor` — a train-time assessor with access to the ground
  truth column, used for reward computation during Q-function training
  (the paper's footnote 2: during training the organiser is assumed to have
  collected the data of all the cells for a preliminary period).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np
from scipy import stats

from repro.inference.base import InferenceAlgorithm
from repro.inference.metrics import cycle_error
from repro.quality.epsilon_p import QualityRequirement
from repro.utils.validation import check_positive_int


class QualityAssessor(abc.ABC):
    """Decides whether the current cycle has collected enough cells."""

    @abc.abstractmethod
    def assess(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> bool:
        """Return True when the current cycle is judged to satisfy the requirement.

        Parameters
        ----------
        observed_matrix:
            Cells × cycles matrix of the data collected so far, NaN for
            unobserved entries; column ``cycle`` is the cycle under
            assessment.
        cycle:
            Index of the current cycle.
        requirement:
            The (ε, p)-quality requirement of the task.
        inference:
            The inference algorithm the campaign uses (needed for the LOO
            re-inference).
        """


class LeaveOneOutBayesianAssessor(QualityAssessor):
    """Leave-one-out Bayesian estimate of P(cycle error ≤ ε).

    Parameters
    ----------
    min_observations:
        Minimum number of sensed cells in the cycle before the assessor is
        willing to declare the quality satisfied; below this the LOO sample
        is too small to be trusted and the assessor always returns False.
    max_loo_cells:
        Cap on the number of LOO re-inferences per assessment (each one is a
        full matrix completion); when more cells are sensed a random subset
        of this size is evaluated.
    history_window:
        Number of past cycles included in the matrix handed to the inference
        algorithm.  Bounding the history keeps each assessment's cost flat
        over the campaign.
    """

    def __init__(
        self,
        min_observations: int = 3,
        max_loo_cells: int = 12,
        history_window: int = 24,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.min_observations = check_positive_int(min_observations, "min_observations")
        self.max_loo_cells = check_positive_int(max_loo_cells, "max_loo_cells")
        self.history_window = check_positive_int(history_window, "history_window")
        self._rng = rng or np.random.default_rng(0)

    def assess(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> bool:
        probability = self.probability_error_below(
            observed_matrix, cycle, requirement, inference
        )
        return bool(probability >= requirement.p)

    def probability_error_below(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> float:
        """Posterior probability that the current cycle's error is ≤ ε."""
        observed_matrix = np.asarray(observed_matrix, dtype=float)
        if not 0 <= cycle < observed_matrix.shape[1]:
            raise IndexError(
                f"cycle {cycle} out of range for {observed_matrix.shape[1]} cycles"
            )
        window = self._window(observed_matrix, cycle)
        current = window.shape[1] - 1
        sensed = np.flatnonzero(~np.isnan(window[:, current]))
        n_cells = window.shape[0]
        if sensed.size < self.min_observations:
            return 0.0
        if sensed.size == n_cells:
            # Everything sensed: there is no inference error at all.
            return 1.0

        true_values, predicted_values = self._leave_one_out_predictions(
            window, current, sensed, inference
        )
        if true_values.size == 0:
            return 0.0
        n_unsensed = n_cells - sensed.size
        if requirement.metric in ("classification", "classification_error"):
            return self._classification_posterior(
                true_values, predicted_values, requirement, n_unsensed
            )
        loo_errors = np.abs(predicted_values - true_values)
        return self._continuous_posterior(loo_errors, requirement, n_unsensed)

    # -- internals ---------------------------------------------------------

    def _window(self, observed_matrix: np.ndarray, cycle: int) -> np.ndarray:
        start = max(0, cycle + 1 - self.history_window)
        return observed_matrix[:, start : cycle + 1]

    def _leave_one_out_predictions(
        self,
        window: np.ndarray,
        current: int,
        sensed: np.ndarray,
        inference: InferenceAlgorithm,
    ) -> tuple[np.ndarray, np.ndarray]:
        """LOO (true, re-inferred) value pairs for the sensed cells of the cycle."""
        if sensed.size > self.max_loo_cells:
            chosen = self._rng.choice(sensed, size=self.max_loo_cells, replace=False)
        else:
            chosen = sensed
        true_values, predicted_values = [], []
        for cell in chosen:
            held_out = window.copy()
            true_value = held_out[cell, current]
            held_out[cell, current] = np.nan
            remaining = ~np.isnan(held_out[:, current])
            if not remaining.any():
                continue
            completed = inference.complete(held_out)
            true_values.append(float(true_value))
            predicted_values.append(float(completed[cell, current]))
        return np.asarray(true_values, dtype=float), np.asarray(predicted_values, dtype=float)

    @staticmethod
    def _continuous_posterior(
        loo_errors: np.ndarray, requirement: QualityRequirement, n_unsensed: int
    ) -> float:
        """Normal-approximation posterior over the mean error of the unsensed cells.

        The LOO errors are treated as i.i.d. samples of the per-cell absolute
        error; the cycle error (MAE over unsensed cells) is the mean of
        ``n_unsensed`` such draws, so its posterior predictive mean/standard
        error follow from the sample statistics.  With only a handful of LOO
        samples the Student-t quantile widens the uncertainty appropriately.
        """
        n = loo_errors.size
        mean = float(loo_errors.mean())
        if n == 1:
            # A single sample carries no variance information; be conservative.
            return 1.0 if mean <= requirement.epsilon else 0.0
        std = float(loo_errors.std(ddof=1))
        standard_error = std / np.sqrt(n_unsensed) + std / np.sqrt(n)
        if standard_error <= 1e-12:
            return 1.0 if mean <= requirement.epsilon else 0.0
        t_stat = (requirement.epsilon - mean) / standard_error
        return float(stats.t.cdf(t_stat, df=n - 1))

    @staticmethod
    def _classification_posterior(
        true_values: np.ndarray,
        predicted_values: np.ndarray,
        requirement: QualityRequirement,
        n_unsensed: int,
    ) -> float:
        """Beta–Bernoulli posterior over the misclassification probability.

        Each LOO re-inference gives a Bernoulli outcome — does the
        re-inferred value fall into a different AQI category than the true
        value?  With a Jeffreys Beta(1/2, 1/2) prior the posterior over the
        misclassification probability θ is Beta(1/2 + misses, 1/2 + hits).
        The cycle's classification error is the *mean* of ``n_unsensed``
        Bernoulli(θ) outcomes, so the probability that it is ≤ ε is the
        Beta-Binomial probability of at most ``⌊ε·n_unsensed⌋`` misses among
        the unsensed cells, with θ integrated out over its posterior.
        """
        from repro.datasets.aqi import aqi_category

        true_category = aqi_category(np.clip(true_values, 0.0, None))
        predicted_category = aqi_category(np.clip(predicted_values, 0.0, None))
        misses = int(np.count_nonzero(true_category != predicted_category))
        n = true_values.size
        alpha = 0.5 + misses
        beta = 0.5 + (n - misses)
        allowed_misses = int(np.floor(requirement.epsilon * n_unsensed))
        posterior_predictive = stats.betabinom(n_unsensed, alpha, beta)
        return float(posterior_predictive.cdf(allowed_misses))


class OracleAssessor(QualityAssessor):
    """Ground-truth quality assessment used during Q-function training.

    The paper's training stage assumes the organiser has collected the data
    of all cells for a preliminary period (footnote 2), so the inference
    error of the current cycle can be computed exactly.
    """

    def __init__(self, ground_truth: np.ndarray, history_window: int = 24) -> None:
        self.ground_truth = np.asarray(ground_truth, dtype=float)
        if self.ground_truth.ndim != 2:
            raise ValueError("ground_truth must be a cells x cycles matrix")
        self.history_window = check_positive_int(history_window, "history_window")

    def assess(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> bool:
        error = self.cycle_error(observed_matrix, cycle, requirement, inference)
        return bool(error <= requirement.epsilon)

    def cycle_error(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        requirement: QualityRequirement,
        inference: InferenceAlgorithm,
    ) -> float:
        """Exact inference error of the current cycle over its unsensed cells."""
        observed_matrix = np.asarray(observed_matrix, dtype=float)
        if observed_matrix.shape[0] != self.ground_truth.shape[0]:
            raise ValueError("observed matrix and ground truth disagree on cell count")
        if not 0 <= cycle < observed_matrix.shape[1]:
            raise IndexError(
                f"cycle {cycle} out of range for {observed_matrix.shape[1]} cycles"
            )
        start = max(0, cycle + 1 - self.history_window)
        window = observed_matrix[:, start : cycle + 1]
        current = window.shape[1] - 1
        sensed = ~np.isnan(window[:, current])
        if not np.isnan(window).any():
            return 0.0
        if not sensed.any():
            # Nothing sensed yet: the error of inferring from nothing is
            # effectively unbounded; report infinity so no requirement passes.
            return float("inf")
        completed = inference.complete(window)
        truth_column = self.ground_truth[:, cycle]
        return cycle_error(
            truth_column,
            completed[:, current],
            metric=requirement.metric,
            exclude=sensed,
        )
