"""The cell-selection policy interface.

A policy decides, given everything collected so far, which cell to sense
next in the current cycle.  The campaign runner calls ``begin_cycle`` once
per cycle, then ``select_cell`` repeatedly until the quality assessor is
satisfied, then ``end_cycle``.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class CellSelectionPolicy(abc.ABC):
    """Abstract cell-selection policy used by :class:`~repro.mcs.campaign.CampaignRunner`."""

    #: Short display name used in experiment reports.
    name: str = "policy"

    def begin_cycle(self, cycle: int, observed_matrix: np.ndarray) -> None:
        """Hook called at the start of each sensing cycle.

        ``observed_matrix`` holds everything collected in earlier cycles
        (NaN for unobserved entries); column ``cycle`` is still entirely NaN.
        """

    @abc.abstractmethod
    def select_cell(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
    ) -> int:
        """Return the index of the next cell to sense in ``cycle``.

        Parameters
        ----------
        observed_matrix:
            Cells × cycles matrix of collected data so far (NaN = unobserved),
            including the current cycle's partial observations.
        cycle:
            Index of the current cycle.
        sensed_mask:
            Boolean vector; True for cells already sensed in this cycle.  The
            returned cell must be one where ``sensed_mask`` is False.
        """

    def end_cycle(self, cycle: int, observed_matrix: np.ndarray) -> None:
        """Hook called when the current cycle's data collection terminates."""

    @staticmethod
    def _validate_selection(cell: int, sensed_mask: np.ndarray) -> int:
        """Shared guard: the chosen cell must exist and be unsensed."""
        cell = int(cell)
        if not 0 <= cell < sensed_mask.shape[0]:
            raise ValueError(f"cell {cell} out of range [0, {sensed_mask.shape[0]})")
        if sensed_mask[cell]:
            raise ValueError(f"cell {cell} was already sensed in this cycle")
        return cell

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
