"""The QBC (Query-By-Committee) baseline (paper §5.2).

QBC runs a committee of different inference algorithms on the partially
observed matrix and selects, as the next cell to sense, the unsensed cell
whose inferred values disagree the most (largest variance) across the
committee — i.e. the cell that is currently hardest to infer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.inference.committee import InferenceCommittee
from repro.api.registry import POLICIES
from repro.mcs.policies import CellSelectionPolicy
from repro.utils.seeding import RngLike, as_rng
from repro.utils.validation import check_positive_int


@POLICIES.register("qbc", seed_stream=22)
class QBCSelectionPolicy(CellSelectionPolicy):
    """Query-by-committee cell selection.

    Parameters
    ----------
    committee:
        The inference committee whose disagreement drives the selection;
        defaults to :meth:`InferenceCommittee.default`.
    coordinates:
        Cell coordinates handed to the default committee's KNN member.
    history_window:
        Number of past cycles included in the matrix handed to the committee
        (bounds per-selection cost over long campaigns).
    seed:
        Seed for tie-breaking randomness.
    """

    name = "QBC"

    def __init__(
        self,
        committee: Optional[InferenceCommittee] = None,
        *,
        coordinates: Optional[np.ndarray] = None,
        history_window: int = 24,
        seed: RngLike = None,
    ) -> None:
        self._rng = as_rng(seed)
        self.history_window = check_positive_int(history_window, "history_window")
        if committee is None:
            committee = InferenceCommittee.default(coordinates=coordinates, seed=self._rng)
        self.committee = committee

    def select_cell(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
    ) -> int:
        observed_matrix = np.asarray(observed_matrix, dtype=float)
        sensed_mask = np.asarray(sensed_mask, dtype=bool)
        candidates = np.flatnonzero(~sensed_mask)
        if candidates.size == 0:
            raise ValueError("all cells are already sensed in this cycle")

        start = max(0, cycle + 1 - self.history_window)
        window = observed_matrix[:, start : cycle + 1]
        current = window.shape[1] - 1
        if not np.any(~np.isnan(window)):
            # Nothing observed anywhere yet: the committee has no signal, so
            # fall back to a random first probe.
            return int(self._rng.choice(candidates))

        disagreement = self.committee.cycle_disagreement(window, current)
        scores = disagreement[candidates]
        best = float(scores.max())
        # Break ties (common in the very first selections) at random.
        top = candidates[np.flatnonzero(scores == best)]
        return int(self._rng.choice(top))

    # -- round-tripping ----------------------------------------------------------

    def state_dict(self) -> dict:
        """The tie-breaking stream position.

        The committee members are stateless between calls (ALS freezes its
        initialisation seed at construction), so the policy's only evolving
        state is its tie-break generator.
        """
        from repro.utils.statedict import rng_state

        return {"rng": rng_state(self._rng)}

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.statedict import set_rng_state

        set_rng_state(self._rng, state["rng"])
