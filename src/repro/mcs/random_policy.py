"""The RANDOM baseline (paper §5.2).

In each sensing cycle, cells are selected uniformly at random one by one
until the quality assessor is satisfied.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import POLICIES
from repro.mcs.policies import CellSelectionPolicy
from repro.utils.seeding import RngLike, as_rng


@POLICIES.register("random", seed_stream=21)
class RandomSelectionPolicy(CellSelectionPolicy):
    """Uniform random selection among the cells not yet sensed this cycle."""

    name = "RANDOM"

    def __init__(self, *, seed: RngLike = None) -> None:
        self._rng = as_rng(seed)

    def select_cell(
        self,
        observed_matrix: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
    ) -> int:
        sensed_mask = np.asarray(sensed_mask, dtype=bool)
        candidates = np.flatnonzero(~sensed_mask)
        if candidates.size == 0:
            raise ValueError("all cells are already sensed in this cycle")
        return int(self._rng.choice(candidates))

    # -- round-tripping ----------------------------------------------------------

    def state_dict(self) -> dict:
        """The selection stream position (the policy's only state)."""
        from repro.utils.statedict import rng_state

        return {"rng": rng_state(self._rng)}

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.statedict import set_rng_state

        set_rng_state(self._rng, state["rng"])
