"""Batched lockstep execution of Sparse MCS training environments.

:class:`BatchedSparseMCSVectorEnv` is the mcs-side half of the vectorized
training engine.  The dominant per-step cost of
:class:`~repro.mcs.environment.SparseMCSEnvironment` is the quality-check
inference (a full ALS matrix completion per submission); stepping K
environments through the generic :class:`~repro.rl.vector_env.VectorEnv`
would run K completions one by one.  This subclass instead collects every
environment's inference window with
:meth:`~repro.mcs.environment.SparseMCSEnvironment.begin_step`, completes
them in a single vectorized call
(:meth:`~repro.inference.compressive.CompressiveSensingInference.complete_batch`)
and then finishes each step.

The batched completion optimises the same ALS objective with the same
budget but is not bit-for-bit identical to the sequential solver (see
``complete_batch``), so this wrapper is used for the throughput-oriented
``vector_envs > 1`` training mode; the ``vector_envs = 1`` default keeps
the paper's exact sequential protocol.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.inference.base import InferenceAlgorithm
from repro.mcs.environment import SparseMCSEnvironment
from repro.rl.vector_env import StepResult, VectorEnv


class BatchedSparseMCSVectorEnv(VectorEnv):
    """K Sparse MCS environments with batched quality-check inference.

    Parameters
    ----------
    envs:
        The environments to drive.  They may differ in seeds, datasets or
        quality requirements as long as they share the cell count.
    inference:
        Inference algorithm used for the *batched* quality checks; defaults
        to the first environment's algorithm.  Must advertise a vectorized
        solver via ``supports_batch_completion`` — otherwise stepping falls
        back to the generic per-environment loop (the base class's
        ``complete_batch`` is a sequential loop, so routing through it would
        batch nothing).  When no explicit algorithm is given, batching
        also requires every environment's algorithm to be equivalently
        configured (same type and solver hyper-parameters); mixing different
        algorithms silently changes rewards, so heterogeneous environments
        fall back to per-environment stepping instead.
    """

    def __init__(
        self,
        envs: Sequence[SparseMCSEnvironment],
        *,
        inference: Optional[InferenceAlgorithm] = None,
    ) -> None:
        for index, env in enumerate(envs):
            if not isinstance(env, SparseMCSEnvironment):
                raise TypeError(
                    f"environment {index} is {type(env).__name__}, "
                    "expected SparseMCSEnvironment"
                )
        super().__init__(envs)
        self.inference = inference if inference is not None else envs[0].inference
        self._batched = getattr(self.inference, "supports_batch_completion", False)
        if self._batched and inference is None:
            self._batched = all(
                self._equivalent_inference(env.inference, self.inference)
                for env in self.envs
            )

    @staticmethod
    def _equivalent_inference(a: InferenceAlgorithm, b: InferenceAlgorithm) -> bool:
        """True when two algorithms are interchangeable for the quality check.

        Environments built from one config carry separately seeded instances
        of the same solver; those batch fine (the batched solver uses one
        initialisation anyway).  Different types or hyper-parameters do not —
        nor do different execution backends or convergence/sharding knobs,
        which can be numerically different and must not pool into one
        stacked solve.
        """
        if a is b:
            return True
        if type(a) is not type(b):
            return False
        solver_params = (
            "rank",
            "regularization",
            "temporal_weight",
            "iterations",
            "backend",
            "tolerance",
            "shard_rows",
            "shard_overlap",
        )
        return all(
            getattr(a, name, None) == getattr(b, name, None) for name in solver_params
        )

    def step_many(self, indexed_actions: Sequence[Tuple[int, int]]) -> List[StepResult]:
        if not self._batched:
            return super().step_many(indexed_actions)
        windows = []
        try:
            for index, action in indexed_actions:
                windows.append(self.envs[index].begin_step(action))
            pending = [pos for pos, window in enumerate(windows) if window is not None]
            if pending:
                completed = self.inference.complete_batch(
                    [windows[pos] for pos in pending]
                )
                for pos, window in zip(pending, completed):
                    windows[pos] = window
        except Exception:
            # Don't leave half the fleet with unfinished steps: abort every
            # environment that already began, then re-raise.
            for index, _ in indexed_actions[: len(windows)]:
                self.envs[index].abort_step()
            raise
        return [
            self.envs[index].finish_step(windows[pos])
            for pos, (index, _) in enumerate(indexed_actions)
        ]
