"""Sparse Mobile CrowdSensing framework.

This subpackage ties the substrates together into the system the paper
evaluates DR-Cell inside:

* :class:`~repro.mcs.task.SensingTask` — a dataset plus its (ε, p)-quality
  requirement, inference algorithm and quality assessor.
* :class:`~repro.mcs.policies.CellSelectionPolicy` — the policy interface;
  :class:`~repro.mcs.random_policy.RandomSelectionPolicy` and
  :class:`~repro.mcs.qbc.QBCSelectionPolicy` are the paper's baselines.
* :class:`~repro.mcs.campaign.CampaignRunner` — the cycle loop: select cells
  one by one until the quality assessor is satisfied, then infer the rest.
* :class:`~repro.mcs.campaign.BatchedCampaignRunner` — the same loop for P
  policies / requirement settings in lockstep, with the per-submission
  assessments and end-of-cycle completions batched.
* :class:`~repro.mcs.served.ServedCampaignRunner` — the same lockstep loop
  with every batched decision routed through a shared
  :class:`~repro.serve.server.DecisionServer`, so independent fleets fuse
  work across campaigns.
* :class:`~repro.mcs.environment.SparseMCSEnvironment` — the reinforcement-
  learning view of the same loop, used to train DR-Cell.
* :class:`~repro.mcs.results.CampaignResult` — per-cycle records and
  aggregate statistics (average selected cells, (ε, p) compliance).
"""

from repro.mcs.task import SensingTask
from repro.mcs.policies import CellSelectionPolicy
from repro.mcs.random_policy import RandomSelectionPolicy
from repro.mcs.qbc import QBCSelectionPolicy
from repro.mcs.campaign import BatchedCampaignRunner, CampaignConfig, CampaignRunner
from repro.mcs.environment import SparseMCSEnvironment, StateEncoder
from repro.mcs.results import CampaignResult, CycleRecord
from repro.mcs.served import ServedCampaignRunner

__all__ = [
    "SensingTask",
    "CellSelectionPolicy",
    "RandomSelectionPolicy",
    "QBCSelectionPolicy",
    "BatchedCampaignRunner",
    "CampaignConfig",
    "CampaignRunner",
    "ServedCampaignRunner",
    "SparseMCSEnvironment",
    "StateEncoder",
    "CampaignResult",
    "CycleRecord",
]
