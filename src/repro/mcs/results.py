"""Campaign result records.

A campaign produces one :class:`CycleRecord` per sensing cycle and a
:class:`CampaignResult` aggregating them: the cell-selection matrix, the
per-cycle true inference errors, and the statistics the paper reports
(average number of selected cells per cycle, fraction of cycles meeting the
error bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.quality.epsilon_p import QualityRequirement, satisfies_epsilon_p


@dataclass(frozen=True)
class CycleRecord:
    """Outcome of one sensing cycle.

    Attributes
    ----------
    cycle:
        Cycle index within the campaign.
    selected_cells:
        The cells sensed in this cycle, in selection order.
    true_error:
        Inference error of the cycle measured against the ground truth over
        the *unsensed* cells (NaN when the campaign has no ground truth).
    assessed_satisfied:
        Whether the quality assessor declared the cycle satisfied (as opposed
        to collection stopping because every cell was sensed).
    """

    cycle: int
    selected_cells: tuple
    true_error: float
    assessed_satisfied: bool

    @property
    def n_selected(self) -> int:
        """Number of cells sensed in this cycle."""
        return len(self.selected_cells)


@dataclass
class CampaignResult:
    """Aggregated outcome of a full sensing campaign."""

    policy_name: str
    requirement: QualityRequirement
    n_cells: int
    records: List[CycleRecord] = field(default_factory=list)
    inferred_matrix: Optional[np.ndarray] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    def add_record(self, record: CycleRecord) -> None:
        """Append one cycle's record."""
        if record.cycle != len(self.records):
            raise ValueError(
                f"records must be appended in cycle order; expected cycle "
                f"{len(self.records)}, got {record.cycle}"
            )
        self.records.append(record)

    # -- aggregate statistics -------------------------------------------------

    @property
    def n_cycles(self) -> int:
        """Number of cycles recorded."""
        return len(self.records)

    @property
    def total_selected(self) -> int:
        """Total number of data submissions over the whole campaign."""
        return int(sum(record.n_selected for record in self.records))

    @property
    def selected_per_cycle(self) -> np.ndarray:
        """Vector of the number of selected cells in each cycle."""
        return np.asarray([record.n_selected for record in self.records], dtype=int)

    @property
    def mean_selected_per_cycle(self) -> float:
        """The paper's headline metric: average selected cells per cycle."""
        if not self.records:
            return float("nan")
        return float(self.selected_per_cycle.mean())

    @property
    def errors(self) -> np.ndarray:
        """Per-cycle true inference errors."""
        return np.asarray([record.true_error for record in self.records], dtype=float)

    @property
    def quality_satisfied_fraction(self) -> float:
        """Fraction of cycles whose true error met the bound ε."""
        errors = self.errors
        valid = errors[~np.isnan(errors)]
        if valid.size == 0:
            return float("nan")
        return float(np.mean(valid <= self.requirement.epsilon))

    @property
    def satisfies_quality(self) -> bool:
        """Whether the campaign as a whole met its (ε, p)-quality requirement."""
        errors = self.errors
        valid = errors[~np.isnan(errors)]
        if valid.size == 0:
            return False
        return satisfies_epsilon_p(valid, self.requirement)

    def selection_matrix(self) -> np.ndarray:
        """The cells × cycles 0/1 cell-selection matrix S (paper Definition 4)."""
        matrix = np.zeros((self.n_cells, self.n_cycles), dtype=int)
        for record in self.records:
            for cell in record.selected_cells:
                matrix[cell, record.cycle] = 1
        return matrix

    def total_cost(self, cell_costs: Optional[np.ndarray] = None) -> float:
        """Total data-collection cost of the campaign.

        With no ``cell_costs`` every submission costs 1 (the paper's default),
        so this equals :attr:`total_selected`; with a per-cell cost vector
        (the paper's future-work extension) each submission is charged its
        cell's cost.
        """
        if cell_costs is None:
            return float(self.total_selected)
        costs = np.asarray(cell_costs, dtype=float)
        if costs.ndim != 1 or costs.shape[0] != self.n_cells:
            raise ValueError(
                f"cell_costs must be a length-{self.n_cells} vector, got shape {costs.shape}"
            )
        if (costs < 0).any():
            raise ValueError("cell_costs must be non-negative")
        total = 0.0
        for record in self.records:
            for cell in record.selected_cells:
                total += float(costs[cell])
        return total

    def summary(self) -> Dict[str, object]:
        """One-row summary used by the experiment reports."""
        errors = self.errors
        valid = errors[~np.isnan(errors)]
        return {
            "policy": self.policy_name,
            "requirement": self.requirement.describe(),
            "cycles": self.n_cycles,
            "mean_selected_per_cycle": round(self.mean_selected_per_cycle, 2),
            "total_selected": self.total_selected,
            "mean_error": round(float(valid.mean()), 4) if valid.size else float("nan"),
            "quality_satisfied_fraction": round(self.quality_satisfied_fraction, 3),
            "satisfies_quality": self.satisfies_quality,
        }
