"""The Sparse MCS campaign runner: the cycle loop of Figure 2.

For every sensing cycle the runner asks the selection policy for cells one
by one, reveals their ground-truth values ("a participant submits data"),
and after each submission asks the quality assessor whether the cycle now
satisfies the (ε, p)-quality requirement.  When it does (or when every cell
has been sensed) the remaining cells are inferred and the campaign moves to
the next cycle.  The true per-cycle inference error is recorded against the
ground truth so the evaluation can verify the quality guarantee was really
met.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.inference.backends import SolverStats
from repro.mcs.policies import CellSelectionPolicy
from repro.mcs.results import CampaignResult, CycleRecord
from repro.mcs.task import SensingTask
from repro.mcs.vector import BatchedSparseMCSVectorEnv
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive_int

logger = get_logger(__name__)


def _same_attributes(a, b, *, skip: frozenset = frozenset()) -> bool:
    """Attribute-wise equality of two same-type component instances.

    RNG state (``numpy.random.Generator`` attributes) and
    :class:`~repro.inference.backends.SolverStats` telemetry are deliberately
    ignored — neither changes *what* a component computes (stats counters
    merely diverge as instances run); arrays compare by value; everything
    else by ``==`` (objects without a value-based ``__eq__``, e.g. committee
    containers, therefore only match themselves, which keeps the comparison
    conservative).
    """
    state_a, state_b = vars(a), vars(b)
    if set(state_a) != set(state_b):
        return False
    for key, value_a in state_a.items():
        if key in skip:
            continue
        value_b = state_b[key]
        if isinstance(value_a, (np.random.Generator, SolverStats)) or isinstance(
            value_b, (np.random.Generator, SolverStats)
        ):
            continue
        if isinstance(value_a, np.ndarray) or isinstance(value_b, np.ndarray):
            if not (
                isinstance(value_a, np.ndarray)
                and isinstance(value_b, np.ndarray)
                and value_a.shape == value_b.shape
                and np.array_equal(value_a, value_b)
            ):
                return False
        elif value_a != value_b:
            return False
    return True


def _equivalent_inference(a, b) -> bool:
    """True when two inference algorithms are interchangeable for pooling.

    Starts from the :meth:`BatchedSparseMCSVectorEnv._equivalent_inference`
    notion (same type, same ALS solver hyper-parameters, initialisation seed
    ignored — the batched solver uses one initialisation anyway) and
    additionally requires every *other* configuration attribute to match:
    the vector-env check alone would treat e.g. ``KNNInference(k=2)`` and
    ``KNNInference(k=7)`` as interchangeable because neither carries the ALS
    parameter names.
    """
    if a is b:
        return True
    if not BatchedSparseMCSVectorEnv._equivalent_inference(a, b):
        return False
    skip = frozenset(("rank", "regularization", "temporal_weight", "iterations", "_init_seed"))
    return _same_attributes(a, b, skip=skip)


def _equivalent_assessor(a, b) -> bool:
    """True when two assessors are interchangeable for a pooled assessment.

    Mirrors :func:`_equivalent_inference` on the assessor side: distinct
    instances of the same assessor class with equal configuration (and, for
    oracle assessors, equal ground truth) compute the same quantity, so
    lockstep slots carrying them can share one ``assess_many`` call.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    return _same_attributes(a, b)


def _group_by_equivalence(items, equivalent) -> List[List]:
    """Partition ``items`` into groups whose members are pairwise ``equivalent``.

    Equivalence is checked against each group's first member (the relation is
    transitive for the attribute-equality notions used here), preserving
    first-seen order so the pooled calls consume shared random streams in a
    deterministic order.
    """
    groups: List[List] = []
    for item in items:
        for group in groups:
            if equivalent(group[0], item):
                group.append(item)
                break
        else:
            groups.append([item])
    return groups


def _warn_on_window_mismatch(task: SensingTask, config: "CampaignConfig") -> None:
    """Warn when the campaign and the assessor window history differently.

    The campaign hands the assessor the full ``observed[:, :cycle+1]`` matrix
    and each side then windows it independently: the assessor with its own
    ``history_window``, the campaign's final-error computation with
    ``config.history_window``.  When the two disagree, the assessed error and
    the recorded true error are computed over different histories, which can
    silently bias the (ε, p) evaluation — surface it loudly.
    """
    assessor_window = getattr(task.assessor, "history_window", None)
    if assessor_window is not None and int(assessor_window) != config.history_window:
        logger.warning(
            "campaign history_window (%d) differs from the assessor's history_window "
            "(%d); the assessed error and the recorded true error will be computed "
            "over different histories",
            config.history_window,
            int(assessor_window),
        )


@dataclass
class CampaignConfig:
    """Knobs of the campaign loop.

    Attributes
    ----------
    min_cells_per_cycle:
        Number of cells always sensed before the assessor is first consulted
        (the assessor needs a few observations to say anything meaningful).
    max_cells_per_cycle:
        Optional hard cap on submissions per cycle; ``None`` means the cap is
        the number of cells.
    assess_every:
        Consult the assessor after every ``assess_every``-th submission
        (1 = after each submission, as in the paper; larger values trade a
        slightly higher selection count for fewer assessments).
    history_window:
        Number of past cycles kept in the observation matrix handed to the
        inference algorithm when computing the final per-cycle error.
    """

    min_cells_per_cycle: int = 3
    max_cells_per_cycle: Optional[int] = None
    assess_every: int = 1
    history_window: int = 24

    def __post_init__(self) -> None:
        check_positive_int(self.min_cells_per_cycle, "min_cells_per_cycle")
        check_positive_int(self.assess_every, "assess_every")
        check_positive_int(self.history_window, "history_window")
        if self.max_cells_per_cycle is not None:
            check_positive_int(self.max_cells_per_cycle, "max_cells_per_cycle")
            if self.max_cells_per_cycle < self.min_cells_per_cycle:
                raise ValueError(
                    "max_cells_per_cycle must be >= min_cells_per_cycle "
                    f"({self.max_cells_per_cycle} < {self.min_cells_per_cycle})"
                )


class CampaignRunner:
    """Runs a full Sparse MCS campaign for one task and one selection policy."""

    def __init__(self, task: SensingTask, config: Optional[CampaignConfig] = None) -> None:
        self.task = task
        self.config = config or CampaignConfig()
        _warn_on_window_mismatch(task, self.config)

    def run(self, policy: CellSelectionPolicy, *, n_cycles: Optional[int] = None) -> CampaignResult:
        """Execute the campaign and return its :class:`CampaignResult`.

        Parameters
        ----------
        policy:
            The cell-selection policy under evaluation.
        n_cycles:
            Optionally restrict the campaign to the first ``n_cycles`` cycles
            of the task's dataset (used by tests and quick examples).
        """
        dataset = self.task.dataset
        total_cycles = dataset.n_cycles if n_cycles is None else min(
            check_positive_int(n_cycles, "n_cycles"), dataset.n_cycles
        )
        n_cells = dataset.n_cells
        max_cells = self.config.max_cells_per_cycle or n_cells
        max_cells = min(max_cells, n_cells)
        min_cells = min(self.config.min_cells_per_cycle, max_cells)

        ground_truth = dataset.data
        observed = np.full((n_cells, total_cycles), np.nan)
        inferred = np.full((n_cells, total_cycles), np.nan)
        result = CampaignResult(
            policy_name=policy.name,
            requirement=self.task.requirement,
            n_cells=n_cells,
            metadata={"dataset": dataset.name, "n_cycles": total_cycles},
        )

        for cycle in range(total_cycles):
            policy.begin_cycle(cycle, observed)
            sensed_mask = np.zeros(n_cells, dtype=bool)
            selected_order = []
            assessed_satisfied = False

            while sensed_mask.sum() < max_cells:
                cell = policy.select_cell(observed, cycle, sensed_mask)
                cell = CellSelectionPolicy._validate_selection(cell, sensed_mask)
                sensed_mask[cell] = True
                selected_order.append(cell)
                observed[cell, cycle] = ground_truth[cell, cycle]

                n_selected = int(sensed_mask.sum())
                if n_selected < min_cells:
                    continue
                if (n_selected - min_cells) % self.config.assess_every != 0:
                    continue
                if self.task.assessor.assess(
                    observed[:, : cycle + 1], cycle, self.task.requirement, self.task.inference
                ):
                    assessed_satisfied = True
                    break

            true_error, cycle_estimate = self._finalize_cycle(
                observed, ground_truth, cycle, sensed_mask
            )
            inferred[:, cycle] = cycle_estimate
            policy.end_cycle(cycle, observed)
            result.add_record(
                CycleRecord(
                    cycle=cycle,
                    selected_cells=tuple(selected_order),
                    true_error=true_error,
                    assessed_satisfied=assessed_satisfied,
                )
            )
            logger.debug(
                "cycle %d: %d cells selected, error=%.4f, assessed=%s",
                cycle,
                len(selected_order),
                true_error,
                assessed_satisfied,
            )

        result.inferred_matrix = inferred
        return result

    # -- internals -------------------------------------------------------------

    def _finalize_cycle(
        self,
        observed: np.ndarray,
        ground_truth: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
    ) -> tuple[float, np.ndarray]:
        """Infer the unsensed cells of ``cycle`` and measure the true error."""
        start = max(0, cycle + 1 - self.config.history_window)
        window = observed[:, start : cycle + 1]
        current = window.shape[1] - 1
        if sensed_mask.all():
            estimate = ground_truth[:, cycle].copy()
        else:
            completed = self.task.inference.complete(window)
            estimate = completed[:, current]
        error = self.task.requirement.column_error(
            ground_truth[:, cycle], estimate, exclude=sensed_mask
        )
        return float(error), estimate


@dataclass
class _CampaignSlot:
    """Mutable per-(task, policy) state of one lockstep campaign slot."""

    task: SensingTask
    policy: CellSelectionPolicy
    observed: np.ndarray
    inferred: np.ndarray
    result: CampaignResult
    sensed_mask: np.ndarray
    selected_order: List[int] = field(default_factory=list)
    assessed_satisfied: bool = False
    active: bool = False
    #: Tenant (campaign) id the serving layer tags this slot's requests with;
    #: the direct runners never read it.
    tenant: str = "default"

    @property
    def n_selected(self) -> int:
        return len(self.selected_order)


class BatchedCampaignRunner:
    """Runs P campaigns over one shared dataset in lockstep, batching inference.

    The testing-stage evaluation (Figure 6 / Figure 7) compares several
    policies — and often several requirement settings — over the *same*
    dataset.  Running them one :class:`CampaignRunner` at a time repeats the
    dominant cost, the per-submission quality assessment, P times over.  This
    runner instead steps every campaign slot through the cycle loop together:

    * after each lockstep submission round, all due slots are assessed in one
      :meth:`~repro.quality.loo_bayesian.QualityAssessor.assess_many` call,
      which pools every slot's LOO completions into a single
      ``complete_batch`` solve;
    * at the end of each cycle, the not-fully-sensed slots' final inference
      windows are completed in one batched call as well.

    Each slot's campaign semantics are unchanged — a slot stops sensing as
    soon as *its* assessor is satisfied, and records the same per-cycle
    statistics as :class:`CampaignRunner`.  With an inference algorithm that
    has no vectorized solver the batched calls degrade to the sequential
    loop, making the results bit-exact with P separate runners; with a
    vectorized solver (batched ALS) they agree within the solver's
    documented tolerance.

    Parameters
    ----------
    tasks:
        One :class:`SensingTask` (shared by every policy) or one task per
        policy.  All tasks must be bound to the same dataset object —
        lockstep over different ground truths is a logic error.
    config:
        Shared campaign configuration.
    """

    def __init__(
        self,
        tasks: Union[SensingTask, Sequence[SensingTask]],
        config: Optional[CampaignConfig] = None,
    ) -> None:
        if isinstance(tasks, SensingTask):
            tasks = [tasks]
        if not tasks:
            raise ValueError("at least one task is required")
        self.tasks = list(tasks)
        self.config = config or CampaignConfig()
        dataset = self.tasks[0].dataset
        for index, task in enumerate(self.tasks):
            if task.dataset is not dataset:
                raise ValueError(
                    f"task {index} is bound to a different dataset; lockstep slots "
                    "must share one dataset"
                )
        for task in {id(task): task for task in self.tasks}.values():
            _warn_on_window_mismatch(task, self.config)

    def run(
        self,
        policies: Sequence[CellSelectionPolicy],
        *,
        n_cycles: Optional[int] = None,
    ) -> List[CampaignResult]:
        """Run every (task, policy) slot to completion; results are policy-aligned.

        With one task and P policies, every policy runs against that task;
        otherwise ``policies[i]`` runs against ``tasks[i]``.
        """
        if not policies:
            raise ValueError("at least one policy is required")
        tasks = self.tasks
        if len(tasks) == 1 and len(policies) > 1:
            tasks = tasks * len(policies)
        if len(tasks) != len(policies):
            raise ValueError(
                f"{len(policies)} policies for {len(tasks)} tasks; provide one task "
                "(shared) or exactly one task per policy"
            )

        dataset = tasks[0].dataset
        total_cycles = dataset.n_cycles if n_cycles is None else min(
            check_positive_int(n_cycles, "n_cycles"), dataset.n_cycles
        )
        n_cells = dataset.n_cells
        max_cells = self.config.max_cells_per_cycle or n_cells
        max_cells = min(max_cells, n_cells)
        min_cells = min(self.config.min_cells_per_cycle, max_cells)
        ground_truth = dataset.data

        slots = [
            _CampaignSlot(
                task=task,
                policy=policy,
                observed=np.full((n_cells, total_cycles), np.nan),
                inferred=np.full((n_cells, total_cycles), np.nan),
                result=CampaignResult(
                    policy_name=policy.name,
                    requirement=task.requirement,
                    n_cells=n_cells,
                    metadata={"dataset": dataset.name, "n_cycles": total_cycles},
                ),
                sensed_mask=np.zeros(n_cells, dtype=bool),
            )
            for task, policy in zip(tasks, policies)
        ]

        for cycle in range(total_cycles):
            for slot in slots:
                slot.policy.begin_cycle(cycle, slot.observed)
                slot.sensed_mask = np.zeros(n_cells, dtype=bool)
                slot.selected_order = []
                slot.assessed_satisfied = False
                slot.active = True

            while True:
                active = [slot for slot in slots if slot.active]
                if not active:
                    break
                for slot in active:
                    cell = slot.policy.select_cell(slot.observed, cycle, slot.sensed_mask)
                    cell = CellSelectionPolicy._validate_selection(cell, slot.sensed_mask)
                    slot.sensed_mask[cell] = True
                    slot.selected_order.append(cell)
                    slot.observed[cell, cycle] = ground_truth[cell, cycle]
                self._assess_due_slots(active, cycle, min_cells)
                for slot in active:
                    if slot.active and slot.n_selected >= max_cells:
                        slot.active = False

            self._finalize_cycle(slots, ground_truth, cycle)
            for slot in slots:
                slot.policy.end_cycle(cycle, slot.observed)
                slot.result.add_record(
                    CycleRecord(
                        cycle=cycle,
                        selected_cells=tuple(slot.selected_order),
                        true_error=float(
                            slot.task.requirement.column_error(
                                ground_truth[:, cycle],
                                slot.inferred[:, cycle],
                                exclude=slot.sensed_mask,
                            )
                        ),
                        assessed_satisfied=slot.assessed_satisfied,
                    )
                )

        for slot in slots:
            slot.result.inferred_matrix = slot.inferred
        return [slot.result for slot in slots]

    # -- internals -------------------------------------------------------------

    def _assess_due_slots(
        self, active: List[_CampaignSlot], cycle: int, min_cells: int
    ) -> None:
        """Batch-assess every active slot that is due after this submission round."""
        due = [
            slot
            for slot in active
            if slot.n_selected >= min_cells
            and (slot.n_selected - min_cells) % self.config.assess_every == 0
        ]
        # Pool by (assessor, inference) *equivalence*, not identity: slots
        # sharing a task pool trivially, and slots carrying distinct but
        # equivalently configured instances (the normal case when a scenario
        # spec constructs one instance per slot) share the batched solve too.
        groups = _group_by_equivalence(
            due,
            lambda a, b: _equivalent_assessor(a.task.assessor, b.task.assessor)
            and _equivalent_inference(a.task.inference, b.task.inference),
        )
        for group in groups:
            # Per-slot RNG partitioning: the representative runs the pooled
            # pass, but each slot's subsampling draws come from its own
            # assessor's stream (slots sharing one instance share one stream,
            # consumed in slot order — identical to the pre-partitioning
            # behaviour).
            verdicts = group[0].task.assessor.assess_many(
                [slot.observed[:, : cycle + 1] for slot in group],
                [cycle] * len(group),
                [slot.task.requirement for slot in group],
                group[0].task.inference,
                rngs=[getattr(slot.task.assessor, "rng", None) for slot in group],
            )
            for slot, verdict in zip(group, verdicts):
                if verdict:
                    slot.assessed_satisfied = True
                    slot.active = False

    def _finalize_cycle(
        self, slots: List[_CampaignSlot], ground_truth: np.ndarray, cycle: int
    ) -> None:
        """Infer every slot's unsensed cells for ``cycle``, batched per algorithm."""
        start = max(0, cycle + 1 - self.config.history_window)
        needs_completion: List[_CampaignSlot] = []
        for slot in slots:
            if slot.sensed_mask.all():
                slot.inferred[:, cycle] = ground_truth[:, cycle]
            else:
                needs_completion.append(slot)
        groups = _group_by_equivalence(
            needs_completion,
            lambda a, b: _equivalent_inference(a.task.inference, b.task.inference),
        )
        for group in groups:
            inference = group[0].task.inference
            windows = [slot.observed[:, start : cycle + 1] for slot in group]
            completed_windows = inference.complete_batch(windows)
            for slot, completed in zip(group, completed_windows):
                slot.inferred[:, cycle] = completed[:, completed.shape[1] - 1]
