"""The Sparse MCS campaign runner: the cycle loop of Figure 2.

For every sensing cycle the runner asks the selection policy for cells one
by one, reveals their ground-truth values ("a participant submits data"),
and after each submission asks the quality assessor whether the cycle now
satisfies the (ε, p)-quality requirement.  When it does (or when every cell
has been sensed) the remaining cells are inferred and the campaign moves to
the next cycle.  The true per-cycle inference error is recorded against the
ground truth so the evaluation can verify the quality guarantee was really
met.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.inference.metrics import cycle_error
from repro.mcs.policies import CellSelectionPolicy
from repro.mcs.results import CampaignResult, CycleRecord
from repro.mcs.task import SensingTask
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive_int

logger = get_logger(__name__)


@dataclass
class CampaignConfig:
    """Knobs of the campaign loop.

    Attributes
    ----------
    min_cells_per_cycle:
        Number of cells always sensed before the assessor is first consulted
        (the assessor needs a few observations to say anything meaningful).
    max_cells_per_cycle:
        Optional hard cap on submissions per cycle; ``None`` means the cap is
        the number of cells.
    assess_every:
        Consult the assessor after every ``assess_every``-th submission
        (1 = after each submission, as in the paper; larger values trade a
        slightly higher selection count for fewer assessments).
    history_window:
        Number of past cycles kept in the observation matrix handed to the
        inference algorithm when computing the final per-cycle error.
    """

    min_cells_per_cycle: int = 3
    max_cells_per_cycle: Optional[int] = None
    assess_every: int = 1
    history_window: int = 24

    def __post_init__(self) -> None:
        check_positive_int(self.min_cells_per_cycle, "min_cells_per_cycle")
        check_positive_int(self.assess_every, "assess_every")
        check_positive_int(self.history_window, "history_window")
        if self.max_cells_per_cycle is not None:
            check_positive_int(self.max_cells_per_cycle, "max_cells_per_cycle")
            if self.max_cells_per_cycle < self.min_cells_per_cycle:
                raise ValueError(
                    "max_cells_per_cycle must be >= min_cells_per_cycle "
                    f"({self.max_cells_per_cycle} < {self.min_cells_per_cycle})"
                )


class CampaignRunner:
    """Runs a full Sparse MCS campaign for one task and one selection policy."""

    def __init__(self, task: SensingTask, config: Optional[CampaignConfig] = None) -> None:
        self.task = task
        self.config = config or CampaignConfig()

    def run(self, policy: CellSelectionPolicy, *, n_cycles: Optional[int] = None) -> CampaignResult:
        """Execute the campaign and return its :class:`CampaignResult`.

        Parameters
        ----------
        policy:
            The cell-selection policy under evaluation.
        n_cycles:
            Optionally restrict the campaign to the first ``n_cycles`` cycles
            of the task's dataset (used by tests and quick examples).
        """
        dataset = self.task.dataset
        total_cycles = dataset.n_cycles if n_cycles is None else min(
            check_positive_int(n_cycles, "n_cycles"), dataset.n_cycles
        )
        n_cells = dataset.n_cells
        max_cells = self.config.max_cells_per_cycle or n_cells
        max_cells = min(max_cells, n_cells)
        min_cells = min(self.config.min_cells_per_cycle, max_cells)

        ground_truth = dataset.data
        observed = np.full((n_cells, total_cycles), np.nan)
        inferred = np.full((n_cells, total_cycles), np.nan)
        result = CampaignResult(
            policy_name=policy.name,
            requirement=self.task.requirement,
            n_cells=n_cells,
            metadata={"dataset": dataset.name, "n_cycles": total_cycles},
        )

        for cycle in range(total_cycles):
            policy.begin_cycle(cycle, observed)
            sensed_mask = np.zeros(n_cells, dtype=bool)
            selected_order = []
            assessed_satisfied = False

            while sensed_mask.sum() < max_cells:
                cell = policy.select_cell(observed, cycle, sensed_mask)
                cell = CellSelectionPolicy._validate_selection(cell, sensed_mask)
                sensed_mask[cell] = True
                selected_order.append(cell)
                observed[cell, cycle] = ground_truth[cell, cycle]

                n_selected = int(sensed_mask.sum())
                if n_selected < min_cells:
                    continue
                if (n_selected - min_cells) % self.config.assess_every != 0:
                    continue
                if self.task.assessor.assess(
                    observed[:, : cycle + 1], cycle, self.task.requirement, self.task.inference
                ):
                    assessed_satisfied = True
                    break

            true_error, cycle_estimate = self._finalize_cycle(
                observed, ground_truth, cycle, sensed_mask
            )
            inferred[:, cycle] = cycle_estimate
            policy.end_cycle(cycle, observed)
            result.add_record(
                CycleRecord(
                    cycle=cycle,
                    selected_cells=tuple(selected_order),
                    true_error=true_error,
                    assessed_satisfied=assessed_satisfied,
                )
            )
            logger.debug(
                "cycle %d: %d cells selected, error=%.4f, assessed=%s",
                cycle,
                len(selected_order),
                true_error,
                assessed_satisfied,
            )

        result.inferred_matrix = inferred
        return result

    # -- internals -------------------------------------------------------------

    def _finalize_cycle(
        self,
        observed: np.ndarray,
        ground_truth: np.ndarray,
        cycle: int,
        sensed_mask: np.ndarray,
    ) -> tuple[float, np.ndarray]:
        """Infer the unsensed cells of ``cycle`` and measure the true error."""
        start = max(0, cycle + 1 - self.config.history_window)
        window = observed[:, start : cycle + 1]
        current = window.shape[1] - 1
        if sensed_mask.all():
            estimate = ground_truth[:, cycle].copy()
        else:
            completed = self.task.inference.complete(window)
            estimate = completed[:, current]
        error = cycle_error(
            ground_truth[:, cycle],
            estimate,
            metric=self.task.requirement.metric,
            exclude=sensed_mask,
        )
        return float(error), estimate
