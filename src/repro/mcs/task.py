"""The :class:`SensingTask`: a dataset bound to its quality requirement and inference stack.

A task is what an MCS organiser runs a campaign for — e.g. "temperature over
the campus at (0.3 °C, 0.9)-quality, inferred with compressive sensing,
assessed with leave-one-out Bayesian inference".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.datasets.base import SensingDataset
from repro.inference.base import InferenceAlgorithm
from repro.inference.compressive import CompressiveSensingInference
from repro.quality.epsilon_p import QualityRequirement
from repro.quality.loo_bayesian import LeaveOneOutBayesianAssessor, QualityAssessor
from repro.utils.seeding import RngLike, derive_rng


@dataclass
class SensingTask:
    """A Sparse MCS sensing task.

    Attributes
    ----------
    dataset:
        The ground-truth dataset the campaign runs over (the campaign only
        reveals values of cells it decides to sense).
    requirement:
        The (ε, p)-quality requirement.
    inference:
        The data-inference algorithm (compressive sensing by default).
    assessor:
        The test-time quality assessor (leave-one-out Bayesian by default).
    """

    dataset: SensingDataset
    requirement: QualityRequirement
    inference: Optional[InferenceAlgorithm] = None
    assessor: Optional[QualityAssessor] = None

    def __post_init__(self) -> None:
        if self.inference is None:
            self.inference = CompressiveSensingInference(seed=0)
        if self.assessor is None:
            self.assessor = LeaveOneOutBayesianAssessor()

    @property
    def n_cells(self) -> int:
        """Number of cells in the task's sensing area."""
        return self.dataset.n_cells

    @property
    def n_cycles(self) -> int:
        """Number of sensing cycles in the task's dataset."""
        return self.dataset.n_cycles

    def with_dataset(self, dataset: SensingDataset) -> "SensingTask":
        """A copy of this task bound to a different dataset (e.g. a train/test split)."""
        return SensingTask(
            dataset=dataset,
            requirement=self.requirement,
            inference=self.inference,
            assessor=self.assessor,
        )

    @classmethod
    def default_temperature_task(
        cls,
        dataset: SensingDataset,
        *,
        epsilon: float = 0.3,
        p: float = 0.9,
        seed: RngLike = 0,
    ) -> "SensingTask":
        """The paper's temperature task: (0.3 °C, p)-quality, MAE metric."""
        return cls(
            dataset=dataset,
            requirement=QualityRequirement(epsilon=epsilon, p=p, metric="mae"),
            inference=CompressiveSensingInference(seed=derive_rng(seed, 0)),
            assessor=LeaveOneOutBayesianAssessor(),
        )

    @classmethod
    def default_pm25_task(
        cls,
        dataset: SensingDataset,
        *,
        epsilon: float = 9.0 / 36.0,
        p: float = 0.9,
        seed: RngLike = 0,
    ) -> "SensingTask":
        """The paper's PM2.5 task: (9/36, p)-quality, classification metric."""
        return cls(
            dataset=dataset,
            requirement=QualityRequirement(epsilon=epsilon, p=p, metric="classification"),
            inference=CompressiveSensingInference(seed=derive_rng(seed, 0)),
            assessor=LeaveOneOutBayesianAssessor(),
        )
