"""The reinforcement-learning view of a Sparse MCS campaign.

:class:`SparseMCSEnvironment` exposes the training-stage cell-selection loop
as an episodic environment with the paper's state / action / reward model
(§4.1):

* **state** — the cell-selection vectors of the ``window`` most recent
  cycles, shape ``(window, n_cells)``, the last row being the current
  (partial) cycle;
* **action** — the index of the next cell to sense;
* **reward** — ``R_bonus − cost`` when the submission makes the current
  cycle satisfy the quality requirement (the cycle then ends), ``−cost``
  otherwise.

During training the organiser is assumed to have ground-truth data for the
whole preliminary-study period (paper footnote 2), so quality is checked by
computing the true inference error directly rather than with the
leave-one-out Bayesian assessor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.datasets.base import SensingDataset
from repro.inference.base import InferenceAlgorithm
from repro.inference.compressive import CompressiveSensingInference
from repro.quality.epsilon_p import QualityRequirement
from repro.rl.environment import Environment
from repro.utils.seeding import RngLike, derive_rng
from repro.utils.validation import check_non_negative, check_positive_int


class StateEncoder:
    """Encodes the recent-cycle selection history into the DR-Cell state tensor.

    The state is a ``(window, n_cells)`` binary matrix
    ``[s_{-window+1}, …, s_{-1}, s_0]``: older cycles first, the current
    (partial) cycle last.  Cycles before the start of the episode are
    all-zero rows.
    """

    def __init__(self, n_cells: int, window: int) -> None:
        self.n_cells = check_positive_int(n_cells, "n_cells")
        self.window = check_positive_int(window, "window")

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the encoded state."""
        return (self.window, self.n_cells)

    def encode(self, selection_matrix: np.ndarray, cycle: int, current: np.ndarray) -> np.ndarray:
        """Build the state for ``cycle`` given past selections and the current partial vector.

        Parameters
        ----------
        selection_matrix:
            Cells × cycles 0/1 matrix of *completed* cycles' selections.
        cycle:
            Index of the current cycle.
        current:
            Binary vector of cells sensed so far in the current cycle (s0).
        """
        selection_matrix = np.asarray(selection_matrix)
        current = np.asarray(current, dtype=float)
        if current.shape != (self.n_cells,):
            raise ValueError(
                f"current selection vector must have shape ({self.n_cells},), got {current.shape}"
            )
        state = np.zeros(self.shape, dtype=float)
        state[-1] = current
        for offset in range(1, self.window):
            past_cycle = cycle - offset
            if past_cycle < 0:
                break
            state[-1 - offset] = selection_matrix[:, past_cycle]
        return state


@dataclass
class RewardModel:
    """The paper's reward: ``q·bonus − cost`` per submission.

    ``bonus`` defaults to the number of cells (the value used in the paper's
    tabular walk-through, Figure 5, where R is set to the total number of
    cells) and ``cost`` to 1.

    The paper's future-work section mentions the case where the data
    collection costs of different cells are diverse; ``cell_costs`` supports
    that extension: when provided, the cost of a submission is the selected
    cell's entry instead of the uniform ``cost``.
    """

    bonus: float
    cost: float = 1.0
    cell_costs: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        check_non_negative(self.bonus, "bonus")
        check_non_negative(self.cost, "cost")
        if self.cell_costs is not None:
            costs = np.asarray(self.cell_costs, dtype=float)
            if costs.ndim != 1:
                raise ValueError("cell_costs must be a 1-D per-cell vector")
            if not np.isfinite(costs).all() or (costs < 0).any():
                raise ValueError("cell_costs must be finite and non-negative")
            self.cell_costs = costs

    def cost_of(self, cell: Optional[int] = None) -> float:
        """Cost of sensing ``cell`` (the uniform cost when no per-cell costs are set)."""
        if self.cell_costs is None or cell is None:
            return self.cost
        if not 0 <= int(cell) < self.cell_costs.shape[0]:
            raise ValueError(
                f"cell {cell} out of range [0, {self.cell_costs.shape[0]}) for cell_costs"
            )
        return float(self.cell_costs[int(cell)])

    def reward(self, quality_satisfied: bool, cell: Optional[int] = None) -> float:
        """Reward of one submission given whether it completed the cycle."""
        return (self.bonus if quality_satisfied else 0.0) - self.cost_of(cell)


class SparseMCSEnvironment(Environment):
    """Training environment over a ground-truth dataset.

    One episode is one pass over the dataset's cycles.  Each step senses one
    cell of the current cycle; the cycle ends (and the next begins) as soon
    as the true inference error of the current cycle drops below the
    requirement's ε, or when every cell has been sensed.

    Parameters
    ----------
    dataset:
        Ground-truth training dataset (the preliminary-study data).
    requirement:
        The (ε, p)-quality requirement; only ε and the metric are used here
        because training measures the error exactly.
    window:
        Number of recent cycles encoded in the state.
    inference:
        Inference algorithm used to compute the cycle error.
    reward_model:
        Reward parameters; defaults to bonus = number of cells, cost = 1.
    min_cells_before_check:
        Submissions collected before the first error check of a cycle
        (checking with one observation is meaningless and expensive).
    history_window:
        Past cycles included in the matrix given to the inference algorithm.
    max_episode_cycles:
        Optionally truncate an episode to this many cycles (episodes then
        start at a random offset so training still sees the whole dataset).
    seed:
        Seed for the random episode offsets.
    """

    def __init__(
        self,
        dataset: SensingDataset,
        requirement: QualityRequirement,
        *,
        window: int = 2,
        inference: Optional[InferenceAlgorithm] = None,
        reward_model: Optional[RewardModel] = None,
        min_cells_before_check: int = 2,
        history_window: int = 12,
        max_episode_cycles: Optional[int] = None,
        seed: RngLike = None,
    ) -> None:
        self.dataset = dataset
        self.requirement = requirement
        self.window = check_positive_int(window, "window")
        self.inference = inference or CompressiveSensingInference(seed=derive_rng(seed, 0))
        self.reward_model = reward_model or RewardModel(bonus=float(dataset.n_cells))
        self.min_cells_before_check = check_positive_int(
            min_cells_before_check, "min_cells_before_check"
        )
        self.history_window = check_positive_int(history_window, "history_window")
        if max_episode_cycles is not None:
            max_episode_cycles = check_positive_int(max_episode_cycles, "max_episode_cycles")
            max_episode_cycles = min(max_episode_cycles, dataset.n_cycles)
        self.max_episode_cycles = max_episode_cycles
        self._rng = derive_rng(seed, 1)
        self.encoder = StateEncoder(dataset.n_cells, self.window)

        # Episode state (populated by reset()).
        self._episode_start = 0
        self._episode_cycles = dataset.n_cycles
        self._cycle_offset = 0
        self._selection_matrix = np.zeros((dataset.n_cells, dataset.n_cycles), dtype=int)
        self._observed = np.full((dataset.n_cells, dataset.n_cycles), np.nan)
        self._current = np.zeros(dataset.n_cells, dtype=float)
        self._done = True
        self._pending: Optional[Tuple[int, int, int]] = None
        self._pending_quality: Optional[Tuple[bool, float]] = None

    # -- Environment protocol ------------------------------------------------

    @property
    def n_actions(self) -> int:
        return self.dataset.n_cells

    @property
    def n_cells(self) -> int:
        """Alias for the action count; one action per cell."""
        return self.dataset.n_cells

    @property
    def episode_cycles(self) -> int:
        """Number of sensing cycles in the current episode."""
        return self._episode_cycles

    def reset(self) -> np.ndarray:
        n_cycles = self.dataset.n_cycles
        if self.max_episode_cycles is None or self.max_episode_cycles >= n_cycles:
            self._episode_start = 0
            self._episode_cycles = n_cycles
        else:
            self._episode_cycles = self.max_episode_cycles
            self._episode_start = int(
                self._rng.integers(0, n_cycles - self.max_episode_cycles + 1)
            )
        self._cycle_offset = 0
        self._selection_matrix = np.zeros((self.n_cells, n_cycles), dtype=int)
        self._observed = np.full((self.n_cells, n_cycles), np.nan)
        self._current = np.zeros(self.n_cells, dtype=float)
        self._done = False
        self._pending = None
        self._pending_quality = None
        return self._state()

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        window = self.begin_step(action)
        try:
            completed = self.inference.complete(window) if window is not None else None
        except Exception:
            # Keep the env steppable after an inference failure (the
            # submission stays recorded, as it always was).
            self.abort_step()
            raise
        return self.finish_step(completed)

    def abort_step(self) -> None:
        """Discard a pending :meth:`begin_step` so the environment stays usable.

        The recorded submission itself is kept (the observation was made);
        only the unfinished step bookkeeping is cleared.  Used by callers
        whose quality-check inference failed between ``begin_step`` and
        ``finish_step``.
        """
        self._pending = None
        self._pending_quality = None

    def begin_step(self, action: int) -> Optional[np.ndarray]:
        """Record a submission and return the inference window, if one is needed.

        This is the first half of :meth:`step`, split out so that a vector
        environment can collect the quality-check inference inputs of K
        environments and complete them in one batched call.  Returns ``None``
        when the quality check is already decided (every cell sensed, or
        fewer than ``min_cells_before_check`` submissions); otherwise returns
        the partially observed history window whose completed form
        :meth:`finish_step` expects.
        """
        if self._done:
            raise RuntimeError("step() called on a finished episode; call reset() first")
        if self._pending is not None:
            raise RuntimeError("begin_step() called twice without finish_step()")
        action = int(action)
        if not 0 <= action < self.n_cells:
            raise ValueError(f"action {action} out of range [0, {self.n_cells})")
        if self._current[action] >= 1.0:
            raise ValueError(f"cell {action} was already sensed in the current cycle")

        cycle = self._absolute_cycle()
        self._current[action] = 1.0
        self._observed[action, cycle] = self.dataset.data[action, cycle]

        n_selected = int(self._current.sum())
        self._pending = (action, cycle, n_selected)
        if n_selected >= self.n_cells:
            self._pending_quality = (True, 0.0)
            return None
        if n_selected < self.min_cells_before_check:
            self._pending_quality = (False, float("inf"))
            return None
        self._pending_quality = None
        start = max(0, cycle + 1 - self.history_window)
        return self._observed[:, start : cycle + 1]

    def finish_step(
        self, completed_window: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        """Apply the quality verdict and complete the step begun by :meth:`begin_step`.

        ``completed_window`` must be the inference completion of the window
        returned by :meth:`begin_step` (or ``None`` when that returned
        ``None``).
        """
        if self._pending is None:
            raise RuntimeError("finish_step() called without begin_step()")
        action, cycle, n_selected = self._pending
        if self._pending_quality is not None:
            satisfied, error = self._pending_quality
        else:
            if completed_window is None:
                # Leave the pending submission intact so the caller can retry
                # with a proper completion; clearing it here would silently
                # half-apply the step.
                raise ValueError("a completed window is required to finish this step")
            current = completed_window.shape[1] - 1
            sensed = self._current >= 1.0
            error = self.requirement.column_error(
                self.dataset.data[:, cycle],
                completed_window[:, current],
                exclude=sensed,
            )
            satisfied, error = bool(error <= self.requirement.epsilon), float(error)
        self._pending = None
        self._pending_quality = None

        reward = self.reward_model.reward(satisfied, cell=action)
        info: Dict[str, Any] = {
            "cycle": cycle,
            "n_selected": n_selected,
            "error": error,
            "quality_satisfied": satisfied,
        }

        if satisfied:
            self._selection_matrix[:, cycle] = self._current.astype(int)
            self._cycle_offset += 1
            self._current = np.zeros(self.n_cells, dtype=float)
            if self._cycle_offset >= self._episode_cycles:
                self._done = True
        return self._state(), reward, self._done, info

    def valid_action_mask(self) -> np.ndarray:
        return self._current < 1.0

    def render(self) -> str:
        cycle = min(self._absolute_cycle(), self.dataset.n_cycles - 1)
        return (
            f"cycle {cycle}: {int(self._current.sum())}/{self.n_cells} cells sensed, "
            f"episode cycle {self._cycle_offset + 1}/{self._episode_cycles}"
        )

    # -- helpers ---------------------------------------------------------------

    def _absolute_cycle(self) -> int:
        return min(self._episode_start + self._cycle_offset, self.dataset.n_cycles - 1)

    def _state(self) -> np.ndarray:
        cycle = self._absolute_cycle()
        return self.encoder.encode(self._selection_matrix, cycle, self._current)
