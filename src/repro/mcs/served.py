"""Server-backed campaigns: the lockstep cycle loop against a :class:`DecisionServer`.

:class:`ServedCampaignRunner` runs the exact campaign protocol of
:class:`~repro.mcs.campaign.BatchedCampaignRunner` — the same submission
rounds, the same assessment cadence, the same per-cycle records — but routes
every batched decision through a shared :class:`~repro.serve.server.
DecisionServer` instead of calling the components directly:

* DR-Cell policy queries become ``select_cell`` requests (one stacked
  Q-network forward for every pending query against a shared agent; other
  policies keep selecting locally, they are cheap);
* due-slot quality assessments become ``assess_quality`` requests (grouped
  by the same (assessor, inference) equivalence classes, answered with one
  pooled ``assess_many`` per class);
* end-of-cycle completions become ``complete_matrix`` requests (one
  ``complete_batch`` per inference class);
* for served online policies (:class:`~repro.learner.actor.ActorPolicy`),
  each finished cycle's transitions are shipped to the central learner as a
  ``learn_batch`` request, resolved before the next cycle's selections are
  submitted.

Because requests are submitted in slot order and the server processes each
batch FIFO with the same equivalence grouping, a single runner driven alone
against a server reproduces the direct ``BatchedCampaignRunner`` results —
bitwise, including the shared assessor's RNG stream (the completion cache
returns exactly what a recomputation would, since the batched solvers are
batch-composition independent).

The new capability is *concurrency*: :meth:`launch` returns a generator, and
any number of runners — over different datasets, requirements, scenarios —
can be driven cooperatively against one server with
:func:`repro.serve.server.drive`.  Requests from different runners land in
the same server batches, so independent campaigns share Q-network forwards,
ALS solves and cached completions that the per-fleet runners cannot fuse.
Note that cross-runner pooling feeds *equivalent* (but distinct) assessor
instances through one representative, so a runner sharing a server with
equivalent neighbours sees the same decisions only in distribution, not
bitwise — run a runner alone (or with non-equivalent neighbours) when exact
reproduction matters.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.mcs.campaign import (
    BatchedCampaignRunner,
    CampaignConfig,
    _CampaignSlot,
)
from repro.mcs.policies import CellSelectionPolicy
from repro.mcs.results import CampaignResult, CycleRecord
from repro.serve.batcher import PendingResult
from repro.serve.server import CYCLE_BARRIER, DecisionServer, drive
from repro.utils.validation import check_positive_int


class ServedCampaignRunner(BatchedCampaignRunner):
    """A lockstep campaign fleet whose batched decisions come from a server.

    Parameters
    ----------
    tasks:
        As for :class:`~repro.mcs.campaign.BatchedCampaignRunner`: one task
        (shared by every policy) or one per policy, all bound to the same
        dataset object.
    config:
        Shared campaign configuration.
    server:
        The :class:`~repro.serve.server.DecisionServer` to submit decision
        requests to.  Several runners may share one server; drive them
        together with :func:`repro.serve.server.drive`.
    """

    def __init__(
        self,
        tasks,
        config: Optional[CampaignConfig] = None,
        *,
        server: DecisionServer,
    ) -> None:
        super().__init__(tasks, config)
        if not isinstance(server, DecisionServer):
            raise TypeError(f"expected a DecisionServer, got {type(server).__name__}")
        self.server = server
        self._results: Optional[List[CampaignResult]] = None
        self._slots: Optional[List[_CampaignSlot]] = None

    # -- running -----------------------------------------------------------------

    def run(
        self,
        policies: Sequence[CellSelectionPolicy],
        *,
        n_cycles: Optional[int] = None,
    ) -> List[CampaignResult]:
        """Drive this runner alone against its server, to completion.

        Single-runner results are bitwise identical to
        :meth:`BatchedCampaignRunner.run` with the same tasks and policies
        (see the module docstring for why).
        """
        drive(self.server, [self.launch(policies, n_cycles=n_cycles)])
        return self.results

    @property
    def results(self) -> List[CampaignResult]:
        """The policy-aligned results of the last completed :meth:`launch` drive."""
        if self._results is None:
            raise RuntimeError(
                "no completed run; drive launch() to completion first"
            )
        return self._results

    def launch(
        self,
        policies: Sequence[CellSelectionPolicy],
        *,
        n_cycles: Optional[int] = None,
        tenants: Optional[Sequence[str]] = None,
        start_cycle: int = 0,
        stop_cycle: Optional[int] = None,
        slot_states: Optional[Sequence[Optional[dict]]] = None,
    ) -> Iterator[None]:
        """A cooperative driver for this fleet's campaigns.

        The returned generator submits one *phase* of server requests at a
        time (a submission round's policy queries, then its due
        assessments, then — per cycle — the final completions) and yields
        whenever submitted futures must resolve before it can continue.
        Advance it with :func:`repro.serve.server.drive`, interleaved with
        any other runners sharing the server.

        Parameters
        ----------
        tenants:
            Per-slot campaign ids the server tags requests with (fairness
            accounting and journal attribution); defaults to
            ``campaign-{i}`` in slot order.
        start_cycle, stop_cycle, slot_states:
            Checkpoint/resume support.  ``stop_cycle`` ends the run early
            (exclusive bound) while the slots' matrices stay sized for the
            full ``n_cycles`` budget, so :meth:`slot_states` captured at the
            stop restores cleanly.  To resume, pass ``start_cycle`` and the
            captured ``slot_states``: cycles before ``start_cycle`` are
            skipped and each slot is restored (observed/inferred matrices,
            cycle records, policy and assessor state) before the first
            resumed cycle runs.
        """
        self._results = None
        return self._launch(
            policies, n_cycles, tenants, start_cycle, stop_cycle, slot_states
        )

    # -- internals ---------------------------------------------------------------

    def _launch(
        self,
        policies: Sequence[CellSelectionPolicy],
        n_cycles: Optional[int],
        tenants: Optional[Sequence[str]] = None,
        start_cycle: int = 0,
        stop_cycle: Optional[int] = None,
        slot_states: Optional[Sequence[Optional[dict]]] = None,
    ) -> Iterator[None]:
        if not policies:
            raise ValueError("at least one policy is required")
        tasks = self.tasks
        if len(tasks) == 1 and len(policies) > 1:
            tasks = tasks * len(policies)
        if len(tasks) != len(policies):
            raise ValueError(
                f"{len(policies)} policies for {len(tasks)} tasks; provide one task "
                "(shared) or exactly one task per policy"
            )

        dataset = tasks[0].dataset
        total_cycles = dataset.n_cycles if n_cycles is None else min(
            check_positive_int(n_cycles, "n_cycles"), dataset.n_cycles
        )
        n_cells = dataset.n_cells
        max_cells = self.config.max_cells_per_cycle or n_cells
        max_cells = min(max_cells, n_cells)
        min_cells = min(self.config.min_cells_per_cycle, max_cells)
        ground_truth = dataset.data

        slots = [
            _CampaignSlot(
                task=task,
                policy=policy,
                observed=np.full((n_cells, total_cycles), np.nan),
                inferred=np.full((n_cells, total_cycles), np.nan),
                result=CampaignResult(
                    policy_name=policy.name,
                    requirement=task.requirement,
                    n_cells=n_cells,
                    metadata={
                        "dataset": dataset.name,
                        "n_cycles": total_cycles,
                        "served": True,
                    },
                ),
                sensed_mask=np.zeros(n_cells, dtype=bool),
            )
            for task, policy in zip(tasks, policies)
        ]
        if tenants is None:
            tenants = [f"campaign-{index}" for index in range(len(slots))]
        if len(tenants) != len(slots):
            raise ValueError(f"{len(slots)} slots but {len(tenants)} tenants")
        for slot, tenant in zip(slots, tenants):
            slot.tenant = str(tenant)
        self._slots = slots

        start_cycle = int(start_cycle)
        if not 0 <= start_cycle <= total_cycles:
            raise ValueError(
                f"start_cycle {start_cycle} out of range [0, {total_cycles}]"
            )
        end_cycle = total_cycles
        if stop_cycle is not None:
            end_cycle = check_positive_int(stop_cycle, "stop_cycle")
            if not start_cycle <= end_cycle <= total_cycles:
                raise ValueError(
                    f"stop_cycle {end_cycle} out of range "
                    f"[{start_cycle}, {total_cycles}]"
                )
        if slot_states is not None:
            if len(slot_states) != len(slots):
                raise ValueError(
                    f"{len(slots)} slots but {len(slot_states)} slot states"
                )
            for slot, state in zip(slots, slot_states):
                if state is not None:
                    self._restore_slot(slot, state)

        # Actor policies defer their end-of-cycle learning to the server's
        # learn_batch endpoint (and adopt its clock for publication stamps).
        for slot in slots:
            bind = getattr(slot.policy, "bind_server", None)
            if bind is not None:
                bind(self.server)

        for cycle in range(start_cycle, end_cycle):
            for slot in slots:
                slot.policy.begin_cycle(cycle, slot.observed)
                slot.sensed_mask = np.zeros(n_cells, dtype=bool)
                slot.selected_order = []
                slot.assessed_satisfied = False
                slot.active = True

            while True:
                active = [slot for slot in slots if slot.active]
                if not active:
                    break

                # Phase 1 — selection.  Agent-backed policies go through the
                # server (their queries stack with every other pending query
                # against the same agent); other policies select locally.
                # Slots are independent, so a slot's selection never depends
                # on another slot's reveal within the round.
                pending_select: List[Tuple[_CampaignSlot, PendingResult]] = []
                for slot in active:
                    query = self._select_query(slot, cycle)
                    if query is not None:
                        pending_select.append((slot, query))
                    else:
                        self._apply_selection(
                            slot,
                            slot.policy.select_cell(
                                slot.observed, cycle, slot.sensed_mask
                            ),
                            ground_truth,
                            cycle,
                        )
                if pending_select:
                    yield  # resolve the selection batch
                    for slot, future in pending_select:
                        cell = self._apply_selection(
                            slot, future.result(), ground_truth, cycle
                        )
                        # Actor policies record the trajectory policy-side:
                        # report the server-resolved action back so states
                        # and actions stay aligned in submission order.
                        notify = getattr(slot.policy, "observe_selection", None)
                        if notify is not None:
                            notify(cell)

                # Phase 2 — assessment of every due slot, submitted in slot
                # order so the server's equivalence grouping and the pooled
                # assessors' RNG consumption match the direct runner.
                due = [
                    slot
                    for slot in active
                    if slot.n_selected >= min_cells
                    and (slot.n_selected - min_cells) % self.config.assess_every == 0
                ]
                pending_assess: List[Tuple[_CampaignSlot, PendingResult]] = []
                for slot in due:
                    future = self.server.assess_quality(
                        slot.task.assessor,
                        slot.task.inference,
                        slot.observed[:, : cycle + 1],
                        cycle,
                        slot.task.requirement,
                        tenant=slot.tenant,
                    )
                    pending_assess.append((slot, future))
                if pending_assess:
                    yield  # resolve the assessment batch
                    for slot, future in pending_assess:
                        if future.result():
                            slot.assessed_satisfied = True
                            slot.active = False
                for slot in active:
                    if slot.active and slot.n_selected >= max_cells:
                        slot.active = False

            # Phase 3 — end-of-cycle inference for the not-fully-sensed slots.
            start = max(0, cycle + 1 - self.config.history_window)
            pending_complete: List[Tuple[_CampaignSlot, PendingResult]] = []
            for slot in slots:
                if slot.sensed_mask.all():
                    slot.inferred[:, cycle] = ground_truth[:, cycle]
                else:
                    future = self.server.complete_matrix(
                        slot.task.inference,
                        slot.observed[:, start : cycle + 1],
                        tenant=slot.tenant,
                    )
                    pending_complete.append((slot, future))
            if pending_complete:
                yield  # resolve the completion batch
                for slot, future in pending_complete:
                    completed = future.result()
                    slot.inferred[:, cycle] = completed[:, completed.shape[1] - 1]

            for slot in slots:
                slot.policy.end_cycle(cycle, slot.observed)
                slot.result.add_record(
                    CycleRecord(
                        cycle=cycle,
                        selected_cells=tuple(slot.selected_order),
                        true_error=float(
                            slot.task.requirement.column_error(
                                ground_truth[:, cycle],
                                slot.inferred[:, cycle],
                                exclude=slot.sensed_mask,
                            )
                        ),
                        assessed_satisfied=slot.assessed_satisfied,
                    )
                )

            # Phase 4 — stream the cycle's transitions to the central
            # learner.  Batches are submitted in slot order and the yield
            # guarantees they resolve (and, under synchronous publication,
            # the updated weights are published) before any next-cycle
            # selection is submitted — matching direct execution's
            # learn-then-select ordering.
            pending_learn: List[Tuple[_CampaignSlot, PendingResult]] = []
            for slot in slots:
                take = getattr(slot.policy, "take_transition_batch", None)
                batch = take() if take is not None else None
                if batch is not None:
                    future = self.server.learn_batch(
                        slot.policy.learner, batch, tenant=slot.tenant
                    )
                    pending_learn.append((slot, future))
            if pending_learn:
                yield  # resolve the learn batch
                for slot, future in pending_learn:
                    future.result()

            # Cycle barrier — park until every co-driven runner finishes
            # this cycle.  Fleets of different cadence therefore enter each
            # cycle in the same scheduling round, so no server batch mixes
            # requests from different campaign cycles and the boundary is a
            # global quiescent point a checkpoint can capture and a resumed
            # drive reproduces bitwise.  ``run_pending`` does not tick when
            # nothing is pending, so an already-aligned (or solo) fleet is
            # unaffected.
            yield CYCLE_BARRIER

        for slot in slots:
            slot.result.inferred_matrix = slot.inferred
        self._results = [slot.result for slot in slots]

    # -- checkpointing -----------------------------------------------------------

    def slot_states(self) -> List[dict]:
        """Per-slot checkpoint payloads (capture at a cycle boundary only).

        Each entry carries the slot's observed/inferred matrices, its cycle
        records so far, and the policy's and assessor's round-trippable
        state (``None`` for stateless components).  Feed the list back to
        :meth:`launch` via ``slot_states`` together with ``start_cycle`` to
        resume bitwise.  Shared components (one agent or assessor across
        slots) are captured once per slot with identical content, so the
        idempotent per-slot restore converges to the same shared state.
        """
        from repro.utils.statedict import encode_array

        if self._slots is None:
            raise RuntimeError("no launched fleet; call launch() and drive it first")
        states: List[dict] = []
        for slot in self._slots:
            policy_state = None
            if hasattr(slot.policy, "state_dict"):
                policy_state = slot.policy.state_dict()
            assessor_state = None
            if hasattr(slot.task.assessor, "state_dict"):
                assessor_state = slot.task.assessor.state_dict()
            states.append(
                {
                    "tenant": slot.tenant,
                    "observed": encode_array(slot.observed),
                    "inferred": encode_array(slot.inferred),
                    "records": [
                        {
                            "cycle": record.cycle,
                            "selected_cells": list(record.selected_cells),
                            "true_error": record.true_error,
                            "assessed_satisfied": record.assessed_satisfied,
                        }
                        for record in slot.result.records
                    ],
                    "policy": policy_state,
                    "assessor": assessor_state,
                }
            )
        return states

    @staticmethod
    def _restore_slot(slot: _CampaignSlot, state: dict) -> None:
        """Apply one :meth:`slot_states` entry onto a freshly built slot."""
        from repro.utils.statedict import decode_array

        observed = decode_array(state["observed"])
        inferred = decode_array(state["inferred"])
        if observed.shape != slot.observed.shape:
            raise ValueError(
                f"checkpointed observed matrix shape {observed.shape} does not "
                f"match the fleet's {slot.observed.shape} — resume with the "
                "same scenario and cycle budget it was recorded under"
            )
        slot.observed[:, :] = observed
        slot.inferred[:, :] = inferred
        slot.result.records = []
        for record in state["records"]:
            slot.result.add_record(
                CycleRecord(
                    cycle=int(record["cycle"]),
                    selected_cells=tuple(int(c) for c in record["selected_cells"]),
                    true_error=float(record["true_error"]),
                    assessed_satisfied=bool(record["assessed_satisfied"]),
                )
            )
        if state.get("policy") is not None:
            slot.policy.load_state_dict(state["policy"])
        if state.get("assessor") is not None:
            slot.task.assessor.load_state_dict(state["assessor"])

    def _select_query(
        self, slot: _CampaignSlot, cycle: int
    ) -> Optional[PendingResult]:
        """Submit a server-side policy query for the slot, if its policy supports it.

        Plain :class:`~repro.core.drcell.DRCellPolicy` queries are servable,
        and so are :class:`~repro.learner.actor.ActorPolicy` queries — the
        actor's selection is side-effect free (its learning streams through
        ``learn_batch`` at cycle boundaries instead).  Other policies with
        selection-time side effects (e.g. the direct online learner) keep
        their own ``select_cell`` protocol and run locally.
        """
        # Local imports: repro.core.drcell and repro.learner.actor reach back
        # into repro.mcs for the policy interface, so importing them at
        # module scope would cycle.
        from repro.core.drcell import DRCellPolicy
        from repro.learner.actor import ActorPolicy

        policy = slot.policy
        if isinstance(policy, ActorPolicy):
            state, mask = policy.prepare_query(slot.observed, cycle, slot.sensed_mask)
            return self.server.select_cell(
                policy.actor, state, mask, greedy=False, tenant=slot.tenant
            )
        if type(policy) is not DRCellPolicy:
            return None
        agent = policy.agent
        state = agent.state_model.from_observations(
            slot.observed, cycle, slot.sensed_mask
        )
        mask = agent.action_space.mask_from_sensed(slot.sensed_mask)
        return self.server.select_cell(
            agent, state, mask, greedy=policy.greedy, tenant=slot.tenant
        )

    @staticmethod
    def _apply_selection(
        slot: _CampaignSlot, cell: int, ground_truth: np.ndarray, cycle: int
    ) -> int:
        cell = CellSelectionPolicy._validate_selection(cell, slot.sensed_mask)
        slot.sensed_mask[cell] = True
        slot.selected_order.append(cell)
        slot.observed[cell, cycle] = ground_truth[cell, cycle]
        return cell
