"""DR-Cell: Cell Selection with Deep Reinforcement Learning in Sparse Mobile Crowdsensing.

A from-scratch reproduction of Wang et al., ICDCS 2018.  The package is
organised bottom-up:

* :mod:`repro.nn` — NumPy neural-network substrate (dense + LSTM layers,
  optimizers, losses) used by the DRQN.
* :mod:`repro.rl` — reinforcement-learning substrate (replay, schedules,
  tabular Q-learning, DQN/DRQN agents).
* :mod:`repro.inference` — compressive-sensing matrix completion and the
  other inference algorithms Sparse MCS relies on.
* :mod:`repro.quality` — the (ε, p)-quality requirement and the
  leave-one-out Bayesian quality assessor.
* :mod:`repro.datasets` — synthetic Sensor-Scope-scale and U-Air-scale
  sensing datasets.
* :mod:`repro.mcs` — the Sparse MCS framework: tasks, campaigns, the RANDOM
  and QBC baselines, and the RL training environment.
* :mod:`repro.core` — DR-Cell itself: state/action/reward model, the DRQN
  agent, the tabular variant, the trainer and transfer learning.
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the paper's evaluation.
* :mod:`repro.api` — the public declarative layer: component registries,
  JSON-round-trippable :class:`~repro.api.specs.ScenarioSpec` scenarios, and
  the :class:`~repro.api.session.Session` facade
  (``python -m repro.api.cli run scenario.json``).

Quickstart
----------
>>> from repro import quick_campaign
>>> result = quick_campaign(n_cells=12, seed=0)
>>> result.mean_selected_per_cycle > 0
True
"""

from repro.core import (
    DRCellAgent,
    DRCellConfig,
    DRCellPolicy,
    DRCellTrainer,
    TabularDRCell,
    transfer_train,
)
from repro.datasets import SensingDataset, generate_sensorscope, generate_uair
from repro.mcs import (
    CampaignConfig,
    CampaignRunner,
    QBCSelectionPolicy,
    RandomSelectionPolicy,
    SensingTask,
    SparseMCSEnvironment,
)
from repro.quality import QualityRequirement

# Imported last: the api layer's session facade builds on every subpackage
# above (the registries themselves are import-cycle-free).
from repro.api import ScenarioSpec, Session, run_scenario

__version__ = "1.0.0"

__all__ = [
    "DRCellAgent",
    "DRCellConfig",
    "DRCellPolicy",
    "DRCellTrainer",
    "TabularDRCell",
    "transfer_train",
    "SensingDataset",
    "generate_sensorscope",
    "generate_uair",
    "CampaignConfig",
    "CampaignRunner",
    "QBCSelectionPolicy",
    "RandomSelectionPolicy",
    "SensingTask",
    "SparseMCSEnvironment",
    "QualityRequirement",
    "ScenarioSpec",
    "Session",
    "run_scenario",
    "quick_campaign",
    "__version__",
]


def quick_campaign(n_cells: int = 12, *, seed: int = 0):
    """Run a tiny end-to-end Sparse MCS campaign with a random policy.

    Intended as a smoke test and documentation example: generates a small
    synthetic temperature dataset, wraps it in a task with a loose quality
    requirement, and runs a short campaign with the RANDOM baseline.
    Returns the :class:`~repro.mcs.results.CampaignResult`.
    """
    dataset = generate_sensorscope(
        "temperature", n_cells=n_cells, duration_days=1.0, cycle_length_hours=2.0, seed=seed
    )
    task = SensingTask.default_temperature_task(dataset, epsilon=1.0, p=0.8, seed=seed)
    runner = CampaignRunner(task, CampaignConfig(min_cells_per_cycle=2, assess_every=2))
    return runner.run(RandomSelectionPolicy(seed=seed), n_cycles=min(6, dataset.n_cycles))
